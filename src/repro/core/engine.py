"""Unified sweep engine: the one dispatch loop under every grid sweep.

Historically :func:`repro.core.optimizer.optimize` (single site, retry
rounds over fresh pools) and :func:`repro.core.fleet.sweep_fleet` (many
sites, one long-lived pool) each carried their own worker initializer,
chunk evaluator, retry loop, shm lifecycle, journal/resume path, and
commit logic — ~2k LoC of near-duplicate scheduler.  This module owns
all of it once:

* **Chunk planning** — :func:`sweep_chunk_size` /
  :func:`_chunk_missing_indices` are pure functions of the grid (never
  of ``workers``), so chunk boundaries, journal granularity, and the
  ``chunk_completed`` event stream are identical serial vs. parallel
  vs. fleet.
* **Worker plane** — one pool initializer ships a ``site key →
  payload`` map (shared-memory handles by default); workers attach a
  site's segment lazily on its first chunk and cache the context for
  the pool's lifetime.
* **Pool lifecycle** — one long-lived pool, rebuilt on
  ``BrokenProcessPool``; every rebuild consumes chunk attempts, so a
  crash-looping chunk is bounded by ``max_retries``.
* **Resilience** — per-chunk attempt accounting, adaptive
  (EWMA-derived) or fixed stall budgets, idempotent per-ordinal
  commits (a stalled chunk landing after its retry already committed
  is dropped, so journals never hold a chunk twice), journal resume,
  and a serial in-parent drain so sweeps always complete.
* **Cross-site work stealing** — each site gets a fair share of the
  in-flight budget; when a site's queue drains (or it is quarantined),
  its capacity is re-granted to the site with the largest remaining
  grid, so one huge site cannot serialize behind its fair share once
  the small sites finish.
* **Streaming results** — :meth:`SweepEngine.results` is a blocking
  iterator over the engine's event bus that ends when the sweep does,
  without closing the bus (buses are shared across sweeps).

The entry points are now *policy* over this engine: ``optimize()`` is a
one-site fleet (bitwise-identical results, same signature, per-point
serial progress and exponential backoff preserved), and
``sweep_fleet()`` layers site interleaving, quarantine, and deadline
budgets on the same dispatch loop.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from enum import Enum, unique
from typing import (
    Any,
    Deque,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..obs import (
    ProgressCallback,
    SweepEvents,
    export_spans,
    get_logger,
    get_tracer,
    inc,
    merge_snapshot,
    metrics_enabled,
    metrics_snapshot,
    reset_metrics,
    reset_tracing,
    set_gauge,
    span,
    tracing_enabled,
)
from ..obs.events import SweepEvent
from ..resilience import (
    AdaptiveChunkTimeout,
    CheckpointJournal,
    FaultAction,
    FaultKind,
    FaultPlan,
    JournalHeader,
    JOURNAL_VERSION,
    RetryPolicy,
    corrupt_payload,
    execute_pre_fault,
    load_resumable_chunks,
    sweep_fingerprint,
    validate_chunk_result,
)
from ..resilience.checkpoint import PathLike
from ..resilience.validate import ChunkValidationError
from .design import DesignPoint, DesignSpace, Strategy
from .evaluate import DesignEvaluation, SiteContext, evaluate_block, evaluate_design
from .shm import (
    SharedContextError,
    SharedSiteContext,
    SiteContextHandle,
    attach_context,
    handle_pickle_bytes,
    share_context,
)

_log = get_logger("core.engine")

#: Target number of grid chunks per sweep.  Deliberately a pure function
#: of the grid size, *not* of ``workers``: identical chunk boundaries
#: serial vs. parallel are what make the sweep-event stream (one
#: ``chunk_completed`` per chunk), the checkpoint journal granularity,
#: and the per-chunk span histograms worker-count independent.  32 keeps
#: ≥4 chunks in flight per worker for pools of up to 8, so a slow chunk
#: still cannot straggle the pool.
_TARGET_CHUNKS = 32

#: How the scheduler's wait loop ticks, seconds: short enough that
#: deadline and stall checks stay responsive, long enough not to spin.
_TICK_S = 0.05

#: In-flight chunks per pool slot; 2 keeps every worker fed without
#: queueing so much that one site's burst delays the others' turns.
_INFLIGHT_PER_WORKER = 2

#: A chunk of contiguous grid work: (ordinal, start index, stop index).
_Chunk = Tuple[int, int, int]

#: One engine site: (site key, context, design space).  Keys must be
#: unique; single-site sweeps use the context's state code.
EngineSite = Tuple[str, SiteContext, DesignSpace]

#: What the pool initializer ships per site: a tiny shared-memory handle
#: (the default trace plane) or, with ``shm=False`` / on platforms
#: without shared memory, the full pickled context.
_ContextPayload = Union[SiteContext, SiteContextHandle]


@unique
class SiteStatus(Enum):
    """Terminal status of one site within a sweep."""

    COMPLETE = "complete"
    DEGRADED = "degraded"
    FAILED = "failed"
    DEADLINE_EXCEEDED = "deadline_exceeded"


def sweep_chunk_size(total: int, batch_size: Optional[int] = None) -> int:
    """Chunk width for a sweep over ``total`` grid points.

    A pure function of the grid (and an explicit ``batch_size``), never
    of ``workers`` — identical chunk boundaries serial vs. parallel vs.
    fleet are what make the ``chunk_completed`` event stream, the
    checkpoint journal granularity, and the per-chunk span histograms
    engine independent.  Both entry points (:func:`~repro.core.optimize`
    and :func:`~repro.core.sweep_fleet`) chunk through this function, so
    their journals stay interchangeable.
    """
    size = max(1, math.ceil(total / _TARGET_CHUNKS))
    if batch_size is not None:
        size = max(size, batch_size)
    return size


def _chunk_missing_indices(
    filled: Sequence[bool], chunk_size: int
) -> List[_Chunk]:
    """Contiguous runs of unfilled grid indices, split into chunks.

    Ordinals number the chunks in grid order; they are what a fault plan
    addresses and they stay stable across retries.
    """
    chunks: List[_Chunk] = []
    total = len(filled)
    index = 0
    while index < total:
        if filled[index]:
            index += 1
            continue
        run_start = index
        while index < total and not filled[index]:
            index += 1
        for start in range(run_start, index, chunk_size):
            chunks.append((len(chunks), start, min(start + chunk_size, index)))
    return chunks


def _mp_context() -> Optional[multiprocessing.context.BaseContext]:
    """Start-method override for sweep pools (``REPRO_MP_START_METHOD``).

    Unset means the platform default.  CI sets ``spawn`` so the trace
    plane is exercised without fork inheritance; ``fork``/``forkserver``
    are accepted where the platform provides them.
    """
    method = os.environ.get("REPRO_MP_START_METHOD")
    if not method:
        return None
    return multiprocessing.get_context(method)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Site key → payload (shm handle or pickled context) for every site of
#: the sweep, shipped once via the pool initializer.
_worker_payloads: Dict[str, _ContextPayload] = {}

#: Site key → rebuilt context, resolved lazily per worker on first chunk.
_worker_contexts: Dict[str, SiteContext] = {}

_worker_collect_metrics = False
_worker_collect_spans = False

#: Whether ``evaluate_chunk`` spans carry a ``site`` attribute (fleet
#: sweeps do; single-site sweeps keep their historical attribute set).
_worker_span_site = False


def _init_worker(
    payloads: Dict[str, _ContextPayload],
    collect_metrics: bool,
    collect_spans: bool,
    span_site: bool,
) -> None:
    global _worker_payloads, _worker_collect_metrics, _worker_collect_spans
    global _worker_span_site
    _worker_payloads = payloads
    # A fork-started worker inherits the parent's module state; contexts
    # resolved in a previous pool's worker must not leak into this one.
    _worker_contexts.clear()
    _worker_collect_metrics = collect_metrics
    _worker_collect_spans = collect_spans
    _worker_span_site = span_site
    if collect_metrics:
        from ..obs import enable_metrics

        enable_metrics()
    if collect_spans:
        from ..obs import enable_tracing

        enable_tracing()


def _context_for(site: str) -> SiteContext:
    """This worker's context for ``site``, attaching its segment on first use."""
    context = _worker_contexts.get(site)
    if context is None:
        payload = _worker_payloads[site]
        if isinstance(payload, SiteContextHandle):
            context = attach_context(payload)
        else:
            context = payload
        _worker_contexts[site] = context
    return context


def _evaluate_chunk(
    site: str,
    start: int,
    designs: Sequence[DesignPoint],
    strategy: Strategy,
    fault: Optional[FaultAction] = None,
    batched: bool = False,
) -> Tuple[str, int, List[DesignEvaluation], Optional[Dict[str, Any]]]:
    """Evaluate one contiguous slice of a site's grid in a worker process.

    Returns ``(site, start, evaluations, telemetry)`` where ``telemetry``
    is this chunk's worker-registry metrics snapshot (reset at chunk
    start so snapshots are disjoint and the parent can merge counters
    and histogram buckets additively), extended — when the parent was
    tracing at pool creation — with the chunk's exported span records
    under ``"spans"`` and this worker's ``"pid"`` so the parent can
    render them on a per-process Chrome lane.  Metrics are reset
    *before* the lazy attach so a first attach's
    ``context_attach_count`` lands in this chunk's snapshot.  ``fault``
    is the test/CI fault injected into this attempt, if any; ``batched``
    routes the slice through :func:`evaluate_block` (bitwise identical
    to the per-design loop).
    """
    if _worker_collect_metrics:
        reset_metrics()
    if _worker_collect_spans:
        # drop_open: a fork-started worker inherits the parent's open
        # span stack; without dropping it our spans never become roots.
        reset_tracing(drop_open=True)
    if fault is not None and fault.kind is FaultKind.SHM:
        raise SharedContextError(
            f"injected shm fault: segment for site {site!r} is unattachable"
        )
    execute_pre_fault(fault)
    context = _context_for(site)
    attrs: Dict[str, Any] = {"site": site} if _worker_span_site else {}
    evaluations: List[Any]
    with span("evaluate_chunk", **attrs, start=start, n_designs=len(designs)):
        if batched:
            evaluations = list(evaluate_block(context, designs, strategy))
        else:
            evaluations = [
                evaluate_design(context, design, strategy) for design in designs
            ]
    telemetry: Optional[Dict[str, Any]] = (
        metrics_snapshot() if _worker_collect_metrics else None
    )
    if _worker_collect_spans:
        telemetry = dict(telemetry) if telemetry is not None else {}
        telemetry["spans"] = export_spans()
        telemetry["pid"] = os.getpid()
    if fault is not None and fault.kind is FaultKind.CORRUPT:
        evaluations = corrupt_payload(evaluations)
    return site, start, evaluations, telemetry


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class SiteRun:
    """Mutable per-site scheduling state (parent-side only)."""

    __slots__ = (
        "key",
        "context",
        "space",
        "designs",
        "total",
        "results",
        "journal",
        "queue",
        "chunks",
        "n_chunks",
        "attempts",
        "ready_at",
        "committed",
        "best_tons",
        "status",
        "quarantined",
        "serial_chunks",
        "error",
        "shared",
        "payload",
    )

    def __init__(
        self, key: str, context: SiteContext, space: DesignSpace, strategy: Strategy
    ) -> None:
        self.key = key
        self.context = context
        self.space = space
        self.designs: List[DesignPoint] = list(space.points(strategy))
        self.total = len(self.designs)
        self.results: List[Optional[DesignEvaluation]] = [None] * self.total
        self.journal: Optional[CheckpointJournal] = None
        self.queue: Deque[_Chunk] = deque()
        self.chunks: List[_Chunk] = []
        self.n_chunks = 0
        self.attempts: Dict[int, int] = {}
        #: Ordinal → earliest resubmission time (single-site sweeps only:
        #: the exponential-backoff window a failed chunk waits out).
        self.ready_at: Dict[int, float] = {}
        self.committed: Set[int] = set()
        self.best_tons = math.inf
        self.status: Optional[SiteStatus] = None
        self.quarantined = False
        self.serial_chunks = 0
        self.error: Optional[str] = None
        self.shared: Optional[SharedSiteContext] = None
        self.payload: _ContextPayload = context

    @property
    def active(self) -> bool:
        return self.status is None

    @property
    def done_points(self) -> int:
        return sum(1 for r in self.results if r is not None)

    def remaining_chunks(self) -> List[_Chunk]:
        """Chunks not yet committed, in grid order.

        Filters the *initial* chunk list rather than re-chunking the
        missing indices — re-chunking would renumber the ordinals the
        committed set and fault plans address.
        """
        return [chunk for chunk in self.chunks if chunk[0] not in self.committed]

    def partial_evaluations(self) -> Tuple[DesignEvaluation, ...]:
        return tuple(r for r in self.results if r is not None)


@dataclass(frozen=True)
class _Flight:
    """One chunk in flight on the shared pool."""

    site: str
    ordinal: int
    start: int
    stop: int
    submitted_s: float  # time.monotonic() at submission


@dataclass(frozen=True)
class _SiteFaultAdapter:
    """Lift a chunk-scoped :class:`FaultPlan` to the site-keyed protocol."""

    plan: FaultPlan

    def action_for(
        self, site: str, ordinal: int, attempt: int
    ) -> Optional[FaultAction]:
        return self.plan.action_for(ordinal, attempt)


def _round_robin_next(
    states: List[SiteRun], cursor: int
) -> Tuple[Optional[SiteRun], int]:
    """Next active, non-quarantined site with queued work, after ``cursor``."""
    n = len(states)
    for step in range(1, n + 1):
        index = (cursor + step) % n
        state = states[index]
        if state.active and not state.quarantined and state.queue:
            return state, index
    return None, cursor


def _validated_payload(
    payload: Any, flight: _Flight
) -> Tuple[List[DesignEvaluation], Optional[Dict[str, Any]]]:
    """Shape-check one worker payload against its flight."""
    if not isinstance(payload, tuple) or len(payload) != 4:
        raise ChunkValidationError(
            f"chunk {flight.site}:{flight.ordinal}: payload is "
            f"{type(payload).__name__}, expected a 4-tuple"
        )
    site = payload[0]
    if site != flight.site:
        raise ChunkValidationError(
            f"chunk {flight.site}:{flight.ordinal}: worker reported "
            f"site {site!r}"
        )
    _, evaluations, telemetry = validate_chunk_result(
        tuple(payload[1:]), flight.start, flight.stop - flight.start
    )
    return evaluations, telemetry


class SweepEngine:
    """One dispatch loop for every sweep: chunking, pools, shm, commits.

    The engine is *mechanism*; the entry points are policy over it:

    * ``fleet=False`` (one site) reproduces :func:`~repro.core.optimize`
      bit for bit — exponential backoff between a chunk's retries, a
      fixed stall budget, per-point serial progress, exhausted chunks
      degrading to an in-parent serial drain, and no quarantine.
    * ``fleet=True`` reproduces :func:`~repro.core.sweep_fleet` —
      round-robin site interleaving, per-site fault domains with
      quarantine, EWMA-adaptive stall budgets, deadline budgets, and
      per-site terminal events.

    Lifecycle: construct, :meth:`setup` (journals, resume, chunk queues,
    shared segments), :meth:`dispatch` (serial or pooled, plus the
    serial drain), :meth:`cleanup` (always — pool shutdown, segment
    unlink, journal close).  :meth:`results` streams the engine's event
    bus and ends when :meth:`cleanup` runs, so a consumer on another
    thread (or wrapped in ``asyncio.to_thread``) sees every event of
    exactly this sweep.

    Construction of :class:`~concurrent.futures.ProcessPoolExecutor`
    and shared-memory segments is legal *only* here and in
    :mod:`repro.core.shm` (lint rule RL008) — the architecture guard
    that keeps a second scheduler from growing back.
    """

    def __init__(
        self,
        sites: Sequence[EngineSite],
        strategy: Strategy,
        *,
        workers: int = 1,
        fleet: bool = False,
        deadline_s: Optional[float] = None,
        max_retries: int = 2,
        backoff: Optional[RetryPolicy] = None,
        timeout: Optional[AdaptiveChunkTimeout] = None,
        checkpoints: Optional[Mapping[str, Optional[PathLike]]] = None,
        resume: bool = False,
        faults: Optional[Any] = None,
        quarantine: str = "serial",
        shm: bool = True,
        events: Optional[SweepEvents] = None,
        batch_size: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
        steal: bool = True,
    ) -> None:
        self.strategy = strategy
        self.workers = workers
        self.fleet = fleet
        self.deadline_s = deadline_s
        self.max_retries = max_retries
        self.backoff = backoff
        self.timeout = timeout if timeout is not None else AdaptiveChunkTimeout()
        self.checkpoints = dict(checkpoints) if checkpoints else {}
        self.resume = resume
        self.faults = faults
        self.quarantine_mode = quarantine
        self.shm = shm
        self.events = events if events is not None else SweepEvents()
        self.batch_size = batch_size
        self.batched = batch_size is not None
        self.progress = progress
        self.steal = steal
        self.states: List[SiteRun] = [
            SiteRun(key, context, space, strategy) for key, context, space in sites
        ]
        self._by_key = {state.key: state for state in self.states}
        self._fleet_total = sum(state.total for state in self.states)
        self._deadline_at = (
            None if deadline_s is None else time.monotonic() + deadline_s
        )
        self._done_points = 0
        self._payloads: Dict[str, _ContextPayload] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._finished = threading.Event()
        self.use_pool = False
        # Per-point serial progress is the historical optimize() contract
        # (one callback per grid point); pools and fleets report per chunk.
        self._per_point = False

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------

    @property
    def done_points(self) -> int:
        """Committed grid points so far (per-point granular when serial)."""
        return self._done_points

    @property
    def fleet_total(self) -> int:
        """Grid points across every site of the sweep."""
        return self._fleet_total

    def results(self) -> Iterator[SweepEvent]:
        """A blocking iterator over this sweep's events, ending with it.

        Yields every event already on the bus, then new ones as they are
        emitted; ends once :meth:`cleanup` has run and the backlog is
        drained — without closing the bus, which may narrate further
        sweeps.  Consume from another thread while :meth:`dispatch`
        runs (``asyncio`` callers: ``asyncio.to_thread`` the iteration).
        """
        return self.events.stream(stop=self._finished)

    def setup(self) -> None:
        """Journals, resume splicing, chunk queues, shared segments."""
        for state in self.states:
            path = self.checkpoints.get(state.key)
            if path is not None:
                fingerprint = sweep_fingerprint(
                    state.context, state.space, self.strategy
                )
                if self.resume:
                    restored = load_resumable_chunks(
                        path,
                        fingerprint,
                        self.strategy,
                        state.total,
                        events=self.events,
                        site=state.key,
                    )
                    for start, evaluations in restored.items():
                        state.results[start : start + len(evaluations)] = evaluations
                    if restored:
                        skipped = sum(len(e) for e in restored.values())
                        inc("checkpoint_chunks_skipped", len(restored))
                        inc("checkpoint_designs_skipped", skipped)
                        self._done_points += skipped
                state.journal = CheckpointJournal(
                    path,
                    JournalHeader(
                        version=JOURNAL_VERSION,
                        fingerprint=fingerprint,
                        strategy=self.strategy.name,
                        total=state.total,
                    ),
                    truncate=not self.resume,
                )
            # Running best across everything committed so far (seeded with
            # any resumed evaluations) — what frontier_updated compares to.
            state.best_tons = min(
                (r.total_tons for r in state.results if r is not None),
                default=math.inf,
            )
            filled = [r is not None for r in state.results]
            chunk_size = sweep_chunk_size(state.total, self.batch_size)
            state.chunks = _chunk_missing_indices(filled, chunk_size)
            state.queue = deque(state.chunks)
            state.n_chunks = len(state.chunks)
            if self.fleet:
                self._emit(
                    "sweep_started",
                    site=state.key,
                    strategy=self.strategy.value,
                    total=state.total,
                    workers=self.workers,
                    fleet=True,
                )
            if state.n_chunks == 0:
                # Fully restored from its journal: nothing left to sweep.
                self._finalize(state, SiteStatus.COMPLETE)

        if self.progress is not None and self._done_points:
            self.progress(self._done_points, self._fleet_total, self.strategy.value)

        if self.fleet:
            self.use_pool = self.workers > 1
        else:
            self.use_pool = (
                self.workers > 1
                and sum(state.n_chunks for state in self.states) > 1
            )
        self._per_point = not self.fleet and not self.use_pool

        if self.use_pool:
            for state in self.states:
                if self.shm and state.active:
                    try:
                        state.shared = share_context(state.context)
                        state.payload = state.shared.handle
                    except SharedContextError as error:
                        if self.fleet:
                            _log.warning(
                                "site %s: shared-memory trace plane unavailable "
                                "(%s); pickling its context to workers",
                                state.key,
                                error,
                            )
                        else:
                            _log.warning(
                                "shared-memory trace plane unavailable (%s); "
                                "falling back to pickling the context per worker",
                                error,
                            )
                self._payloads[state.key] = state.payload
            if not self.fleet:
                set_gauge(
                    "context_pickle_bytes",
                    handle_pickle_bytes(self.states[0].payload),
                )

    def dispatch(self) -> None:
        """Run the sweep to completion (serial, or pooled plus drain)."""
        if not self.use_pool:
            self._dispatch_serial()
            return
        self._dispatch_pooled()
        self._drain_serial()

    def cleanup(self, interrupted: bool = False) -> None:
        """Tear down every acquired resource; safe after partial setup.

        Runs on completion, exceptions, and interrupts alike: shuts the
        pool down without waiting (a wedged worker must not block the
        caller), unlinks every shared segment, closes every journal, and
        releases :meth:`results` iterators.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        for state in self.states:
            if state.shared is not None:
                state.shared.unlink()
            if state.journal is not None:
                state.journal.close()
        if self.fleet and not interrupted:
            remaining = self._remaining_s()
            if remaining is not None:
                set_gauge("fleet_deadline_remaining_s", remaining)
        self._finished.set()

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------

    def _emit(self, kind: str, **payload: Any) -> None:
        self.events.emit(kind, **payload)

    def _remaining_s(self) -> Optional[float]:
        if self._deadline_at is None:
            return None
        return max(0.0, self._deadline_at - time.monotonic())

    def _deadline_hit(self) -> bool:
        return self._deadline_at is not None and time.monotonic() >= self._deadline_at

    def _commit(
        self,
        state: SiteRun,
        ordinal: int,
        start: int,
        evaluations: List[DesignEvaluation],
        telemetry: Optional[Dict[str, Any]],
        serial: bool = False,
    ) -> None:
        """Write one completed chunk back: results, journal, events, progress.

        Idempotent per ordinal — a stalled chunk that lands after its
        retry already committed is dropped, so the journal never holds a
        chunk twice and worker telemetry merges exactly once per chunk.
        """
        if ordinal in state.committed or state.status is not None:
            return
        state.committed.add(ordinal)
        if serial:
            state.serial_chunks += 1
        state.results[start : start + len(evaluations)] = evaluations
        if telemetry is not None:
            merge_snapshot(telemetry)
            worker_spans = telemetry.get("spans")
            if worker_spans:
                get_tracer().ingest_spans(worker_spans, pid=telemetry.get("pid", 0))
        if state.journal is not None:
            state.journal.append_chunk(start, evaluations)
            inc("checkpoint_chunks_written")
        if not self._per_point:
            self._done_points += len(evaluations)
        self._emit(
            "chunk_completed",
            site=state.key,
            strategy=self.strategy.value,
            start=start,
            count=len(evaluations),
        )
        chunk_best = min(evaluations, key=lambda e: e.total_tons)
        if chunk_best.total_tons < state.best_tons:
            state.best_tons = chunk_best.total_tons
            self._emit(
                "frontier_updated",
                site=state.key,
                strategy=self.strategy.value,
                total_tons=chunk_best.total_tons,
                coverage=chunk_best.coverage,
                design=chunk_best.design.describe(),
            )
        if self.progress is not None and not self._per_point:
            self.progress(self._done_points, self._fleet_total, self.strategy.value)
        if len(state.committed) == state.n_chunks:
            self._finalize(
                state,
                SiteStatus.DEGRADED
                if (state.quarantined or state.serial_chunks)
                else SiteStatus.COMPLETE,
            )

    def _finalize(self, state: SiteRun, status: SiteStatus) -> None:
        """Close a site out; in fleet mode, its terminal event fires once."""
        if state.status is not None:
            return
        state.status = status
        if not self.fleet:
            # Single-site sweeps: the entry point owns the terminal
            # narration (sweep_finished, sweeps_completed) so its event
            # stream stays byte-compatible with the pre-engine optimizer.
            return
        if status in (SiteStatus.COMPLETE, SiteStatus.DEGRADED):
            evaluations = state.results
            assert all(e is not None for e in evaluations)
            best = min(evaluations, key=lambda e: e.total_tons)  # type: ignore[union-attr]
            inc("sweeps_completed")
            set_gauge("sweep_grid_points", state.total)
            if status is SiteStatus.DEGRADED:
                self._emit(
                    "sweep_degraded",
                    site=state.key,
                    strategy=self.strategy.value,
                    serial_chunks=state.serial_chunks,
                    reason=state.error or "quarantined",
                )
            self._emit(
                "sweep_finished",
                site=state.key,
                strategy=self.strategy.value,
                total=state.total,
                best_total_tons=best.total_tons,
                best_coverage=best.coverage,
                status=status.value,
            )
            _log.info(
                "fleet site done: site=%s status=%s best_total_tons=%.1f",
                state.key,
                status.value,
                best.total_tons,
            )
        else:
            _log.warning(
                "fleet site closed: site=%s status=%s committed=%d/%d (%s)",
                state.key,
                status.value,
                state.done_points,
                state.total,
                state.error or "",
            )

    def _quarantine(self, state: SiteRun, reason: str) -> None:
        """Isolate one site's fault domain without killing the sweep."""
        if state.quarantined or state.status is not None:
            return
        state.quarantined = True
        state.error = reason
        inc("sites_quarantined")
        _log.warning(
            "quarantining site %s (%s): %d/%d chunks committed; mode=%s",
            state.key,
            reason,
            len(state.committed),
            state.n_chunks,
            self.quarantine_mode,
        )
        self._emit(
            "site_quarantined",
            site=state.key,
            strategy=self.strategy.value,
            reason=reason,
            mode=self.quarantine_mode,
            committed_chunks=len(state.committed),
            total_chunks=state.n_chunks,
        )
        if self.quarantine_mode == "fail":
            self._finalize(state, SiteStatus.FAILED)

    def _close_deadline(self, active: List[SiteRun]) -> None:
        dropped_chunks = sum(
            state.n_chunks - len(state.committed) for state in active
        )
        inc("chunks_deadline_dropped", dropped_chunks)
        set_gauge("fleet_deadline_remaining_s", 0.0)
        self._emit(
            "deadline_exceeded",
            strategy=self.strategy.value,
            budget_s=self.deadline_s,
            dropped_chunks=dropped_chunks,
            sites=[state.key for state in active],
        )
        _log.warning(
            "fleet deadline (%.3fs) exceeded: dropping %d chunks across %d sites",
            self.deadline_s or 0.0,
            dropped_chunks,
            len(active),
        )
        for state in active:
            state.error = state.error or f"deadline of {self.deadline_s}s exceeded"
            self._finalize(state, SiteStatus.DEADLINE_EXCEEDED)

    def _evaluate_in_parent(
        self, state: SiteRun, start: int, stop: int
    ) -> List[DesignEvaluation]:
        attrs: Dict[str, Any] = {"site": state.key} if self.fleet else {}
        with span(
            "evaluate_chunk", **attrs, start=start, n_designs=stop - start
        ):
            if self.batched:
                return list(
                    evaluate_block(
                        state.context, state.designs[start:stop], self.strategy
                    )
                )
            return [
                evaluate_design(state.context, state.designs[index], self.strategy)
                for index in range(start, stop)
            ]

    # ------------------------------------------------------------------
    # Serial dispatch
    # ------------------------------------------------------------------

    def _dispatch_serial(self) -> None:
        if not self.fleet:
            self._dispatch_serial_single()
            return
        # Fault plans are not applied in-parent — faults fire in pool
        # workers, and the serial path *is* the fault-free oracle the
        # pooled path is tested against.
        cursor = -1
        while True:
            state, cursor = _round_robin_next(self.states, cursor)
            if state is None:
                break
            if self._deadline_hit():
                self._close_deadline([s for s in self.states if s.active])
                break
            ordinal, start, stop = state.queue.popleft()
            evaluations = self._evaluate_in_parent(state, start, stop)
            self._commit(state, ordinal, start, evaluations, None)
            remaining = self._remaining_s()
            if remaining is not None:
                set_gauge("fleet_deadline_remaining_s", remaining)

    def _on_serial_point(self) -> None:
        self._done_points += 1
        if self.progress is not None:
            self.progress(self._done_points, self._fleet_total, self.strategy.value)

    def _dispatch_serial_single(self) -> None:
        """In-process single-site sweep with per-point progress.

        Each chunk is wrapped in the same ``evaluate_chunk`` span a
        worker process opens, so span histograms are identical serial
        vs. parallel; a batched chunk reports its points as the block
        completes.
        """
        state = self.states[0]
        while state.queue:
            ordinal, start, stop = state.queue.popleft()
            evaluations: List[DesignEvaluation] = []
            with span("evaluate_chunk", start=start, n_designs=stop - start):
                if self.batched:
                    evaluations = list(
                        evaluate_block(
                            state.context, state.designs[start:stop], self.strategy
                        )
                    )
                    for _ in evaluations:
                        self._on_serial_point()
                else:
                    for index in range(start, stop):
                        evaluations.append(
                            evaluate_design(
                                state.context, state.designs[index], self.strategy
                            )
                        )
                        self._on_serial_point()
            self._commit(state, ordinal, start, evaluations, None)

    # ------------------------------------------------------------------
    # Pooled dispatch
    # ------------------------------------------------------------------

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(self._payloads, metrics_enabled(), tracing_enabled(), self.fleet),
            mp_context=_mp_context(),
        )

    def _fair_grants(self, max_in_flight: int) -> Dict[str, int]:
        """Initial per-site in-flight capacity: an even split, floor 1.

        The floor keeps every site schedulable when there are more sites
        than slots (the global ``max_in_flight`` still bounds actual
        concurrency); the remainder goes to the front of the site list.
        """
        n = len(self.states)
        if n == 1:
            return {self.states[0].key: max_in_flight}
        fair, remainder = divmod(max_in_flight, n)
        return {
            state.key: max(1, fair + (1 if index < remainder else 0))
            for index, state in enumerate(self.states)
        }

    def _steal_capacity(
        self, grants: Dict[str, int], inflight: Dict[str, int]
    ) -> None:
        """Re-grant a drained site's capacity to the largest remaining grid.

        A site whose queue is empty with nothing in flight can never
        receive new work (requeues only originate from its own in-flight
        failures), so its grant is dead weight — transfer it to the
        active site with the most uncommitted grid points.  Each source
        site is drained at most once (its grant drops to zero).
        """
        for state in self.states:
            cap = grants[state.key]
            if cap <= 0 or inflight[state.key] > 0:
                continue
            if state.active and not state.quarantined and state.queue:
                continue
            target: Optional[SiteRun] = None
            target_remaining = 0
            for other in self.states:
                if (
                    other is state
                    or not other.active
                    or other.quarantined
                    or not other.queue
                ):
                    continue
                remaining = other.total - other.done_points
                if remaining > target_remaining:
                    target_remaining = remaining
                    target = other
            if target is None:
                continue
            grants[target.key] += cap
            grants[state.key] = 0
            inc("capacity_steals")
            self._emit(
                "capacity_stolen",
                strategy=self.strategy.value,
                from_site=state.key,
                to_site=target.key,
                slots=cap,
            )
            _log.info(
                "work stealing: %d slot(s) re-granted %s -> %s (%d points remain)",
                cap,
                state.key,
                target.key,
                target_remaining,
            )

    def _next_pooled_site(
        self,
        cursor: int,
        grants: Dict[str, int],
        inflight: Dict[str, int],
        now: float,
    ) -> Tuple[Optional[SiteRun], int]:
        """Round-robin site pick honoring grants and backoff windows."""
        n = len(self.states)
        for step in range(1, n + 1):
            index = (cursor + step) % n
            state = self.states[index]
            if not (state.active and not state.quarantined and state.queue):
                continue
            if inflight[state.key] >= grants[state.key]:
                continue
            if state.ready_at and state.ready_at.get(state.queue[0][0], 0.0) > now:
                continue
            return state, index
        return None, cursor

    def _record_failure(self, flight: _Flight, error: BaseException) -> None:
        state = self._by_key[flight.site]
        if state.status is not None or flight.ordinal in state.committed:
            return
        inc("chunk_failures")
        if self.fleet and isinstance(error, SharedContextError):
            # The site's segment is unattachable for every worker; retrying
            # cannot help — isolate the fault domain immediately.
            self._quarantine(state, f"shm attach failed: {error}")
            return
        attempts = state.attempts.get(flight.ordinal, 0) + 1
        state.attempts[flight.ordinal] = attempts
        _log.warning(
            "chunk failed: site=%s chunk=%d [%d:%d) attempt=%d: %s: %s",
            flight.site,
            flight.ordinal,
            flight.start,
            flight.stop,
            attempts,
            type(error).__name__,
            error,
        )
        if attempts > self.max_retries:
            if self.fleet:
                self._quarantine(
                    state,
                    f"chunk {flight.ordinal} exhausted {self.max_retries} retries",
                )
            # Single-site: the chunk simply leaves the queue; the serial
            # drain re-evaluates it in-parent, so the sweep completes.
            return
        inc("chunk_retries")
        self._emit(
            "chunk_retried",
            site=flight.site,
            strategy=self.strategy.value,
            ordinal=flight.ordinal,
            start=flight.start,
            stop=flight.stop,
            attempt=attempts,
        )
        if self.backoff is not None:
            state.ready_at[flight.ordinal] = time.monotonic() + self.backoff.backoff_s(
                attempts
            )
        state.queue.append((flight.ordinal, flight.start, flight.stop))

    def _dispatch_pooled(self) -> None:
        """The shared scheduling loop over one long-lived pool.

        A ``BrokenProcessPool`` (a kill fault, a real OOM) is survived by
        failing the in-flight chunks and rebuilding the pool — bounded,
        because every rebuild consumes at least one chunk attempt and
        attempts are capped by ``max_retries``.
        """
        self._pool = self._make_pool()
        flights: Dict[Future, _Flight] = {}
        #: Stalled flights still owed a result: committed if they land
        #: first, ignored otherwise (commit is idempotent per ordinal).
        late: Dict[Future, _Flight] = {}
        max_in_flight = self.workers * _INFLIGHT_PER_WORKER
        grants = self._fair_grants(max_in_flight)
        inflight: Dict[str, int] = {state.key: 0 for state in self.states}
        cursor = -1

        def work_remaining() -> bool:
            if flights:
                return True
            return any(
                state.active and not state.quarantined and state.queue
                for state in self.states
            )

        while work_remaining():
            if self._deadline_hit():
                self._close_deadline([s for s in self.states if s.active])
                break

            if self.steal and len(self.states) > 1:
                self._steal_capacity(grants, inflight)

            # Top up: interleave sites round-robin so none starves.
            pool_broken = False
            now = time.monotonic()
            while len(flights) < max_in_flight:
                state, cursor = self._next_pooled_site(cursor, grants, inflight, now)
                if state is None:
                    break
                ordinal, start, stop = state.queue.popleft()
                if ordinal in state.committed:
                    continue
                fault = (
                    self.faults.action_for(
                        state.key, ordinal, state.attempts.get(ordinal, 0)
                    )
                    if self.faults is not None
                    else None
                )
                try:
                    future = self._pool.submit(
                        _evaluate_chunk,
                        state.key,
                        start,
                        state.designs[start:stop],
                        self.strategy,
                        fault,
                        self.batched,
                    )
                except BrokenExecutor:
                    # The pool died between completions; put the chunk back
                    # (no attempt consumed — it never ran) and rebuild below.
                    state.queue.appendleft((ordinal, start, stop))
                    pool_broken = True
                    break
                flights[future] = _Flight(
                    site=state.key,
                    ordinal=ordinal,
                    start=start,
                    stop=stop,
                    submitted_s=time.monotonic(),
                )
                inflight[state.key] += 1

            if flights or late:
                done, _ = wait(
                    set(flights) | set(late),
                    timeout=_TICK_S,
                    return_when=FIRST_COMPLETED,
                )
                now = time.monotonic()
                for future in done:
                    if future in late:
                        flight = late.pop(future)
                        state = self._by_key[flight.site]
                        # Already retried when declared stalled: commit the
                        # late result if sound, silently drop it otherwise.
                        if future.cancelled() or future.exception() is not None:
                            continue
                        try:
                            evaluations, telemetry = _validated_payload(
                                future.result(timeout=0), flight
                            )
                        except ChunkValidationError:
                            continue
                        self._commit(
                            state, flight.ordinal, flight.start, evaluations, telemetry
                        )
                        continue
                    flight = flights.pop(future)
                    inflight[flight.site] -= 1
                    state = self._by_key[flight.site]
                    try:
                        # timeout=0 is safe: the future came out of the
                        # wait() done set, so the result is already there.
                        payload = future.result(timeout=0)
                        evaluations, telemetry = _validated_payload(payload, flight)
                    except BrokenExecutor as error:
                        pool_broken = True
                        self._record_failure(flight, error)
                        continue
                    except Exception as error:
                        self._record_failure(flight, error)
                        continue
                    if self.fleet:
                        # Only fleets adapt the stall budget; single-site
                        # sweeps keep their fixed chunk_timeout contract.
                        self.timeout.observe(now - flight.submitted_s)
                    self._commit(
                        state, flight.ordinal, flight.start, evaluations, telemetry
                    )

                # Stall detection: an outstanding chunk past the current
                # budget is requeued; its worker may be wedged for good,
                # so the late result is welcome but not waited for.
                budget = self.timeout.budget_s()
                if budget is not None:
                    for future, flight in list(flights.items()):
                        if now - flight.submitted_s <= budget:
                            continue
                        del flights[future]
                        inflight[flight.site] -= 1
                        if not future.cancel():
                            late[future] = flight
                        _log.warning(
                            "chunk stalled: site=%s chunk=%d ran %.2fs "
                            "(budget %.2fs)",
                            flight.site,
                            flight.ordinal,
                            now - flight.submitted_s,
                            budget,
                        )
                        self._record_failure(
                            flight,
                            TimeoutError(
                                f"no result within the {budget:.2f}s stall budget"
                            ),
                        )
            else:
                # Nothing in flight and nothing submittable: every pending
                # chunk is waiting out its retry backoff — sleep until the
                # nearest window opens.
                wake = min(
                    (
                        state.ready_at.get(ordinal, 0.0)
                        for state in self.states
                        if state.active and not state.quarantined
                        for (ordinal, _, _) in state.queue
                    ),
                    default=0.0,
                )
                delay = wake - time.monotonic()
                # Clamp the backoff to the dispatch tick so deadline and
                # shutdown checks keep firing even with far-future retries.
                time.sleep(min(delay, _TICK_S) if delay > 0 else _TICK_S)

            if pool_broken:
                _log.warning(
                    "sweep pool broke; failing %d in-flight chunks and rebuilding",
                    len(flights),
                )
                for future, flight in list(flights.items()):
                    self._record_failure(flight, BrokenExecutor("pool broke mid-flight"))
                flights.clear()
                late.clear()  # old pool's futures can never land
                for key in inflight:
                    inflight[key] = 0
                # wait=True is cheap here — the workers are already dead —
                # and closes the old pool's pipes before its atexit hook
                # can trip over them.
                self._pool.shutdown(wait=True, cancel_futures=True)
                self._pool = self._make_pool()

            remaining = self._remaining_s()
            if remaining is not None:
                set_gauge("fleet_deadline_remaining_s", remaining)

    def _drain_serial(self) -> None:
        """Finish every uncommitted chunk serially in-parent.

        Fleet mode: quarantined-``serial`` sites drain here so healthy
        sites kept the workers.  Single-site mode: chunks that exhausted
        their retries degrade here — a sweep always completes.
        """
        for state in self.states:
            if not state.active:
                continue
            for ordinal, start, stop in state.remaining_chunks():
                if self._deadline_hit():
                    self._close_deadline([s for s in self.states if s.active])
                    break
                inc("serial_fallbacks")
                if not self.fleet:
                    _log.warning(
                        "chunk %d [%d:%d) exhausted %d retries; degrading to "
                        "serial in-process evaluation",
                        ordinal,
                        start,
                        stop,
                        self.max_retries,
                    )
                evaluations = self._evaluate_in_parent(state, start, stop)
                self._commit(state, ordinal, start, evaluations, None, serial=True)
            if self.fleet and state.active:  # pragma: no cover - defensive
                self._finalize(state, SiteStatus.DEGRADED)
