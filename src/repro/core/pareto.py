"""Operational-vs-embodied Pareto analysis (paper Fig. 14).

Each evaluated design is a point in the plane (embodied carbon, operational
carbon).  A design is Pareto-optimal if no other design is at least as good
on both axes and strictly better on one.  The frontier's shape carries the
paper's headline lesson: it bends sharply — early investments buy large
operational reductions cheaply, then a long expensive tail stretches toward
zero operational carbon — and points that reach the axis (zero operational
carbon) always involve batteries.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

from .evaluate import DesignEvaluation
from ..timeseries.stats import is_exact_zero


def pareto_frontier(
    evaluations: Sequence[DesignEvaluation],
    x: Callable[[DesignEvaluation], float] = lambda e: e.embodied_tons,
    y: Callable[[DesignEvaluation], float] = lambda e: e.operational_tons,
) -> Tuple[DesignEvaluation, ...]:
    """The subset of ``evaluations`` not dominated on (x, y), both minimized.

    Returned sorted by ascending ``x`` (so ``y`` descends along the result).
    Ties are kept only once per ``x`` value: among equal-``x`` points only a
    minimal-``y`` representative survives.
    """
    if not evaluations:
        return ()
    ordered = sorted(evaluations, key=lambda e: (x(e), y(e)))
    frontier = []
    best_y = float("inf")
    for evaluation in ordered:
        value = y(evaluation)
        if value < best_y - 1e-12:
            frontier.append(evaluation)
            best_y = value
    return tuple(frontier)


def dominates(
    a: DesignEvaluation,
    b: DesignEvaluation,
    x: Callable[[DesignEvaluation], float] = lambda e: e.embodied_tons,
    y: Callable[[DesignEvaluation], float] = lambda e: e.operational_tons,
) -> bool:
    """``True`` if ``a`` is at least as good as ``b`` on both axes and
    strictly better on at least one."""
    ax, ay = x(a), y(a)
    bx, by = x(b), y(b)
    return ax <= bx and ay <= by and (ax < bx or ay < by)


def knee_point(frontier: Sequence[DesignEvaluation]) -> DesignEvaluation:
    """The frontier point minimizing total carbon (operational + embodied).

    With both axes in the same units (tCO2eq/yr), the carbon-optimal design
    is simply the frontier point with the smallest coordinate sum — the
    "knee" where the long tail stops paying.
    """
    if not frontier:
        raise ValueError("cannot find the knee of an empty frontier")
    return min(frontier, key=lambda e: e.total_tons)


def frontier_tail_ratio(frontier: Sequence[DesignEvaluation]) -> float:
    """Embodied cost of the last frontier step relative to the first.

    Quantifies the "long tail": the ratio of embodied carbon at the
    lowest-operational end of the frontier to embodied carbon at the knee.
    Large values mean chasing the final percent of coverage is expensive.
    """
    if len(frontier) < 2:
        raise ValueError("need at least two frontier points")
    knee = knee_point(frontier)
    tail = min(frontier, key=lambda e: e.operational_tons)
    if is_exact_zero(knee.embodied_tons):
        raise ValueError("knee has zero embodied carbon; ratio undefined")
    return tail.embodied_tons / knee.embodied_tons
