"""One-shot comprehensive site report.

Stitches the library's main analyses into a single text report for one
datacenter site — the "give me everything about Utah" entry point used by
``python -m repro report UT`` and handy in notebooks.  Sections follow the
paper's narrative: demand and supply characterization (§3), solution sizing
(§4), and carbon-optimal designs (§5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..carbon import SupplyScenario, matching_gap
from ..reporting import format_table, percent
from .design import Strategy
from .explorer import CarbonExplorer


@dataclass(frozen=True)
class ReportOptions:
    """Knobs for report depth (all defaults are quick-to-compute)."""

    n_renewable_steps: int = 4
    battery_hours: tuple = (0.0, 2.0, 5.0, 10.0, 16.0)
    extra_capacity_fractions: tuple = (0.0, 0.5)
    flexible_ratio: float = 0.40
    include_optimization: bool = True

    def __post_init__(self) -> None:
        if self.n_renewable_steps < 2:
            raise ValueError("n_renewable_steps must be >= 2")
        if not 0.0 <= self.flexible_ratio <= 1.0:
            raise ValueError("flexible_ratio must be in [0, 1]")


def _characterization_section(explorer: CarbonExplorer) -> str:
    demand = explorer.context.demand
    grid = explorer.context.grid
    rows = [
        ("location", explorer.context.demand.site.location),
        ("balancing authority", f"{grid.authority.code} ({grid.authority.renewable_class.value})"),
        ("average facility power", f"{explorer.avg_power_mw:.1f} MW"),
        ("diurnal utilization swing", f"{demand.diurnal_utilization_swing_points():.2f} points"),
        ("diurnal power swing", percent(demand.diurnal_power_swing())),
        ("grid renewable share", percent(grid.renewable_share())),
        ("grid mean carbon intensity", f"{explorer.context.grid_intensity.mean():.0f} gCO2eq/kWh"),
    ]
    return format_table(["characteristic", "value"], rows, title="Site characterization (§3)")


def _matching_section(explorer: CarbonExplorer) -> str:
    investment = explorer.existing_investment()
    gap = matching_gap(explorer.demand_power, explorer.renewable_supply(investment))
    rows = [
        ("existing investment", f"{investment.solar_mw:.0f} MW solar + {investment.wind_mw:.0f} MW wind"),
        ("annual (Net Zero) matching", percent(gap.annual_fraction)),
        ("monthly matching", percent(gap.monthly_fraction)),
        ("hourly (24/7 CFE) matching", percent(gap.hourly_fraction)),
        ("Net Zero overstatement", f"{gap.net_zero_overstatement * 100:.1f} points"),
    ]
    return format_table(["metric", "value"], rows, title="REC matching gap (§3.2)")


def _sizing_section(explorer: CarbonExplorer, options: ReportOptions) -> str:
    investment = explorer.existing_investment()
    battery_hours = explorer.battery_hours_for_full_coverage(investment)
    scenario_means = {
        "grid mix": explorer.scenario_intensity(SupplyScenario.GRID_MIX).mean(),
        "net zero": explorer.scenario_intensity(SupplyScenario.NET_ZERO).mean(),
    }
    result = explorer.schedule(
        investment,
        capacity_mw=explorer.demand_power.max() * 1.5,
        flexible_ratio=options.flexible_ratio,
    )
    rows = [
        ("coverage of existing investment", percent(explorer.coverage_of_existing_investment())),
        (
            "battery for 100% coverage",
            "unreachable" if math.isinf(battery_hours) else f"{battery_hours:.1f} h of load",
        ),
        ("CAS energy moved / year", f"{result.moved_mwh:,.0f} MWh"),
        ("mean intensity, grid mix", f"{scenario_means['grid mix']:.0f} gCO2eq/kWh"),
        ("mean intensity, net zero", f"{scenario_means['net zero']:.0f} gCO2eq/kWh"),
    ]
    return format_table(["solution sizing", "value"], rows, title="Solution sizing (§4)")


def _optimization_section(explorer: CarbonExplorer, options: ReportOptions) -> str:
    space = explorer.default_space(
        n_renewable_steps=options.n_renewable_steps,
        battery_hours=options.battery_hours,
        extra_capacity_fractions=options.extra_capacity_fractions,
        flexible_ratio=options.flexible_ratio,
    )
    rows = []
    for strategy in Strategy:
        best = explorer.optimize(strategy, space).best
        rows.append(
            (
                strategy.value,
                percent(best.coverage),
                f"{best.operational_tons:,.0f}",
                f"{best.embodied_tons:,.0f}",
                f"{best.total_tons:,.0f}",
                best.design.describe(),
            )
        )
    return format_table(
        ["strategy", "coverage", "op t/yr", "emb t/yr", "total t/yr", "design"],
        rows,
        title="Carbon-optimal designs (§5)",
    )


def site_report(
    state: str,
    options: Optional[ReportOptions] = None,
    year: int = 2020,
    seed: int = 0,
) -> str:
    """Build the full text report for one Table-1 site.

    Parameters
    ----------
    state:
        Site code (e.g. ``"UT"``).
    options:
        Report depth knobs; ``include_optimization=False`` skips the slow
        exhaustive-search section.
    """
    if options is None:
        options = ReportOptions()
    explorer = CarbonExplorer(state, year=year, seed=seed)
    header = (
        f"CARBON EXPLORER SITE REPORT — {state} "
        f"(simulated year {year}, seed {seed})"
    )
    sections = [
        header,
        "=" * len(header),
        _characterization_section(explorer),
        _matching_section(explorer),
        _sizing_section(explorer, options),
    ]
    if options.include_optimization:
        sections.append(_optimization_section(explorer, options))
    return "\n\n".join(sections)
