"""Zero-copy shared-memory trace plane for :class:`SiteContext` fan-out.

A :class:`~repro.core.evaluate.SiteContext` is ~850 KB of pickle, almost all
of it the twelve hourly float64 traces (demand utilization/power, seven
generation fuels, grid demand, curtailment, carbon intensity).  Parallel
sweeps used to ship that pickle to every worker via the pool initializer —
and the resilience layer re-ships it to every *fresh retry-round pool*.
This module instead packs the traces once into a single
``multiprocessing.shared_memory`` segment and hands workers a
:class:`SiteContextHandle`: a few hundred bytes naming the segment plus the
scalar fields.  ``attach()`` maps the segment read-only and rebuilds a
bitwise-identical context whose :class:`~repro.timeseries.HourlySeries`
are zero-copy views over the shared buffer
(:meth:`~repro.timeseries.HourlySeries.from_buffer`).

Segment layout (``n`` = ``calendar.n_hours``, 8-byte float64)::

    +-----------------------------+ offset 0
    | trace 0: n * 8 bytes        |  demand.utilization
    | trace 1: n * 8 bytes        |  demand.power
    | ...                         |  grid.generation[*] (dataset order)
    | trace T-1: n * 8 bytes      |  grid.demand, grid.curtailed,
    |                             |  grid_intensity
    +-----------------------------+ meta_offset = T * n * 8
    | pickled scalar metadata     |  site, fleet, profile, authority,
    | (meta_size bytes)           |  embodied model, fuel order, names
    +-----------------------------+ total size

Lifecycle rules (see DESIGN.md "Shared trace plane"):

* The *creator* (the sweep parent) owns the segment: ``share_context()``
  creates it, and exactly one ``SharedSiteContext.unlink()`` destroys it —
  the optimizer calls it in a ``finally`` so normal completion, exceptions,
  and ``SweepInterrupted`` all release the segment deterministically.
* *Attachers* (pool workers, or the parent in tests) open the segment by
  name and never unlink.  Attached segments are cached per process and the
  backing ``SharedMemory`` object is kept referenced so the numpy views
  stay valid for the worker's lifetime.
* Attaching must not register the segment with the attacher's
  ``resource_tracker`` (a long-standing CPython wart fixed by ``track=``
  in 3.13): otherwise a worker that exits — or is deliberately killed by a
  fault plan — would tear the segment down under the surviving workers and
  spam "leaked shared_memory" warnings.  :func:`_open_untracked` handles
  both interpreter generations.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

from ..obs import get_logger, inc
from ..timeseries import HourlySeries, YearCalendar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (evaluate imports us not)
    from .evaluate import SiteContext

try:  # pragma: no cover - absent only on exotic builds without _posixshmem
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None  # type: ignore[assignment]

_log = get_logger("core.shm")

_FLOAT_BYTES = 8

#: Prefix for every segment this module creates; tests and CI smoke steps
#: assert ``/dev/shm`` holds nothing matching it after a sweep.
SEGMENT_PREFIX = "repro_ctx_"

_segment_seq = 0

#: Segments this process has attached to, kept referenced so numpy views
#: over their buffers stay valid.  Keyed by segment name.
_attached: Dict[str, object] = {}


class SharedContextError(RuntimeError):
    """Shared-memory trace plane failure (create or attach).

    Raised when a segment cannot be created (platform without POSIX shared
    memory, ``/dev/shm`` exhausted) or a handle names a segment that no
    longer exists (already unlinked by its creator).  The optimizer treats
    a create-side failure as non-fatal and falls back to pickling full
    contexts.
    """


@dataclass(frozen=True)
class SiteContextHandle:
    """Picklable descriptor of a shared :class:`SiteContext` segment.

    A handle is what crosses process boundaries instead of the context
    itself: segment name, trace geometry, and the calendar year.  It
    pickles to a few hundred bytes regardless of trace length.
    """

    segment: str
    year: int
    n_hours: int
    n_traces: int
    meta_offset: int
    meta_size: int

    @property
    def total_bytes(self) -> int:
        """Size of the shared segment this handle describes."""
        return self.meta_offset + self.meta_size

    def attach(self) -> "SiteContext":
        """Re-open the segment and rebuild the context (see :func:`attach_context`)."""
        return attach_context(self)


def _context_traces(context: "SiteContext") -> List[np.ndarray]:
    """The context's hourly traces in canonical segment order."""
    traces = [context.demand.utilization.values, context.demand.power.values]
    traces.extend(series.values for series in context.grid.generation.values())
    traces.append(context.grid.demand.values)
    traces.append(context.grid.curtailed.values)
    traces.append(context.grid_intensity.values)
    return traces


def _context_metadata(context: "SiteContext") -> bytes:
    """Pickle of everything that is not an hourly trace."""
    meta = {
        "site": context.demand.site,
        "fleet": context.demand.fleet,
        "profile": context.demand.profile,
        "authority": context.grid.authority,
        "embodied": context.embodied,
        "sources": list(context.grid.generation.keys()),
        "names": [
            context.demand.utilization.name,
            context.demand.power.name,
            *[s.name for s in context.grid.generation.values()],
            context.grid.demand.name,
            context.grid.curtailed.name,
            context.grid_intensity.name,
        ],
    }
    return pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)


def _open_untracked(name: str):
    """Attach to an existing segment without resource-tracker registration.

    Python 3.13+ exposes ``track=False`` for exactly this; earlier
    interpreters register every attach with the resource tracker, which
    would unlink the segment when *any* attaching process exits — so there
    the registration is immediately undone.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # track= unknown before 3.13
        pass
    # Pre-3.13: suppress the register call for the duration of the attach.
    # Sending REGISTER and then UNREGISTER instead would race in the
    # tracker process — its per-type cache is a *set*, so two workers
    # attaching the same segment concurrently dedup to one entry and the
    # second UNREGISTER dies with a KeyError in the tracker.
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - platforms without a tracker
        return _shared_memory.SharedMemory(name=name)
    original_register = resource_tracker.register

    def _register_ignoring_shm(name: str, rtype: str) -> None:
        if rtype != "shared_memory":
            original_register(name, rtype)

    resource_tracker.register = _register_ignoring_shm
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


class SharedSiteContext:
    """Creator-side ownership of one shared context segment.

    Returned by :func:`share_context`; holds the live ``SharedMemory``
    object, the original context, and the :class:`SiteContextHandle` to
    ship to workers.  Exactly one :meth:`unlink` (idempotent) destroys the
    segment; use as a context manager to tie the lifetime to a block.
    """

    __slots__ = ("handle", "context", "_segment")

    def __init__(self, handle: SiteContextHandle, context: "SiteContext", segment) -> None:
        self.handle = handle
        self.context = context
        self._segment = segment

    def unlink(self) -> None:
        """Destroy the segment (idempotent).  Attached views in *this*
        process are dropped from the attach cache so a later
        :func:`attach_context` for the same name fails loudly instead of
        silently reusing stale memory."""
        segment, self._segment = self._segment, None
        if segment is None:
            return
        stale = _attached.pop(self.handle.segment, None)
        if stale is not None and stale is not segment:
            stale.close()  # type: ignore[attr-defined]
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "SharedSiteContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink()


def shared_memory_available() -> bool:
    """Whether this platform can back the trace plane at all."""
    return _shared_memory is not None


def share_context(context: "SiteContext") -> SharedSiteContext:
    """Pack ``context``'s traces into one shared-memory segment.

    Copies each trace (bitwise, float64) into the segment followed by the
    pickled scalar metadata, and returns the owning
    :class:`SharedSiteContext`.  Increments the ``shm_bytes_shared``
    counter by the segment size.

    Raises
    ------
    SharedContextError
        If shared memory is unavailable or the segment cannot be created;
        callers (the optimizer) fall back to pickling the full context.
    """
    if _shared_memory is None:
        raise SharedContextError("multiprocessing.shared_memory is unavailable")
    global _segment_seq
    traces = _context_traces(context)
    n_hours = context.demand.power.calendar.n_hours
    meta_blob = _context_metadata(context)
    meta_offset = len(traces) * n_hours * _FLOAT_BYTES
    total = meta_offset + len(meta_blob)
    segment = None
    for _ in range(8):  # name collisions with a dead process's leftovers
        _segment_seq += 1
        name = f"{SEGMENT_PREFIX}{os.getpid()}_{_segment_seq}"
        try:
            segment = _shared_memory.SharedMemory(create=True, size=total, name=name)
            break
        except FileExistsError:
            continue
        except OSError as error:
            raise SharedContextError(f"cannot create shared segment: {error}") from error
    if segment is None:  # pragma: no cover - eight consecutive collisions
        raise SharedContextError("could not find a free shared segment name")
    try:
        for index, values in enumerate(traces):
            view = np.ndarray(
                (n_hours,),
                dtype=np.float64,
                buffer=segment.buf,
                offset=index * n_hours * _FLOAT_BYTES,
            )
            view[:] = values
        segment.buf[meta_offset:total] = meta_blob
    except BaseException:
        segment.close()
        segment.unlink()
        raise
    handle = SiteContextHandle(
        segment=segment.name,
        year=context.demand.power.calendar.year,
        n_hours=n_hours,
        n_traces=len(traces),
        meta_offset=meta_offset,
        meta_size=len(meta_blob),
    )
    inc("shm_bytes_shared", total)
    _log.debug(
        "shared context segment %s: %d traces x %d hours + %d meta bytes = %d bytes",
        handle.segment,
        handle.n_traces,
        n_hours,
        len(meta_blob),
        total,
    )
    return SharedSiteContext(handle, context, segment)


def attach_context(handle: SiteContextHandle) -> "SiteContext":
    """Rebuild a bitwise-identical :class:`SiteContext` from a handle.

    Opens the named segment (cached per process; the backing object stays
    referenced so the views outlive this call), wraps each trace in a
    read-only zero-copy :class:`HourlySeries`, and reassembles the demand,
    grid dataset, and context around the pickled scalar metadata.
    Increments the ``context_attach_count`` counter.

    Raises
    ------
    SharedContextError
        If the segment no longer exists — i.e. the creator already
        unlinked it.
    """
    from ..datacenter import DatacenterDemand
    from ..grid import GridDataset
    from .evaluate import SiteContext

    if _shared_memory is None:
        raise SharedContextError("multiprocessing.shared_memory is unavailable")
    segment = _attached.get(handle.segment)
    if segment is None:
        try:
            segment = _open_untracked(handle.segment)
        except FileNotFoundError:
            raise SharedContextError(
                f"shared context segment {handle.segment!r} does not exist "
                "(already unlinked by its creator?)"
            ) from None
        _attached[handle.segment] = segment
    if segment.size < handle.total_bytes:
        raise SharedContextError(
            f"shared context segment {handle.segment!r} is {segment.size} bytes, "
            f"expected at least {handle.total_bytes}"
        )

    calendar = YearCalendar(handle.year)
    meta = pickle.loads(
        bytes(segment.buf[handle.meta_offset : handle.meta_offset + handle.meta_size])
    )
    names = meta["names"]

    def trace(index: int) -> HourlySeries:
        view = np.ndarray(
            (handle.n_hours,),
            dtype=np.float64,
            buffer=segment.buf,
            offset=index * handle.n_hours * _FLOAT_BYTES,
        )
        return HourlySeries.from_buffer(view, calendar, name=names[index])

    sources = meta["sources"]
    generation = {
        source: trace(2 + position) for position, source in enumerate(sources)
    }
    demand = DatacenterDemand(
        site=meta["site"],
        utilization=trace(0),
        power=trace(1),
        fleet=meta["fleet"],
        profile=meta["profile"],
    )
    grid = GridDataset(
        authority=meta["authority"],
        generation=generation,
        demand=trace(2 + len(sources)),
        curtailed=trace(3 + len(sources)),
    )
    context = SiteContext(
        demand=demand,
        grid=grid,
        grid_intensity=trace(4 + len(sources)),
        embodied=meta["embodied"],
    )
    inc("context_attach_count")
    return context


def detach_all() -> None:
    """Close every segment this process attached to (test hygiene)."""
    while _attached:
        _, segment = _attached.popitem()
        try:
            segment.close()  # type: ignore[attr-defined]
        except Exception:  # pragma: no cover
            pass


def handle_pickle_bytes(payload: object) -> int:
    """Size of ``payload`` as the pool initializer would pickle it.

    Feeds the ``context_pickle_bytes`` gauge: with the trace plane on this
    is the handle's few hundred bytes; with ``--no-shm`` it is the full
    context pickle.
    """
    return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
