"""The renewable-coverage metric (paper §4.1).

    "We define renewable coverage as the percentage of hours in the year
    where datacenter power (P_DC) is covered by renewable power (P_Ren):

        { 1 - sum_hour {P_DC - P_Ren} / sum_hour P_DC } x 100"

The sum in the numerator counts only hours of shortfall (a surplus cannot
"un-cover" another hour without storage), i.e. the positive part of the
hourly gap.  Coverage is therefore energy-weighted: it is the fraction of
annual datacenter energy met by renewable energy in the hour it was needed.
We also provide the literal fraction-of-hours variant for analyses that ask
"in how many hours was the datacenter fully green?".
"""

from __future__ import annotations

from ..timeseries import HourlySeries

import numpy as np
from ..timeseries.stats import is_exact_zero


def renewable_coverage(demand: HourlySeries, supply: HourlySeries) -> float:
    """Energy-weighted renewable coverage in [0, 1] (the paper's formula).

    Parameters
    ----------
    demand:
        Hourly datacenter power ``P_DC``, MW; must be positive somewhere.
    supply:
        Hourly renewable power ``P_Ren``, MW.
    """
    if demand.calendar != supply.calendar:
        raise ValueError("demand and supply must share a calendar")
    if demand.min() < 0 or supply.min() < 0:
        raise ValueError("demand and supply must be non-negative")
    total_demand = demand.total()
    if is_exact_zero(total_demand):
        raise ValueError("coverage undefined for zero total demand")
    shortfall = (demand - supply).positive_part().total()
    return 1.0 - shortfall / total_demand


def coverage_from_grid_import(demand: HourlySeries, grid_import: HourlySeries) -> float:
    """Coverage implied by a residual grid-import trace.

    After batteries and/or scheduling, the shortfall *is* the grid import;
    coverage is the complement of its share of demand.  With a zero-capacity
    battery and no scheduling this equals :func:`renewable_coverage` exactly.
    """
    if demand.calendar != grid_import.calendar:
        raise ValueError("demand and grid_import must share a calendar")
    if grid_import.min() < 0:
        raise ValueError("grid import must be non-negative")
    total_demand = demand.total()
    if is_exact_zero(total_demand):
        raise ValueError("coverage undefined for zero total demand")
    coverage = 1.0 - grid_import.total() / total_demand
    if coverage < -1e-9:
        raise ValueError("grid import exceeds total demand: inconsistent traces")
    return max(coverage, 0.0)


def hourly_coverage_fraction(
    demand: HourlySeries, supply: HourlySeries, tolerance_mw: float = 1e-9
) -> float:
    """Fraction of hours in which supply fully covered demand.

    The literal "percentage of hours" reading of 24/7 coverage; stricter
    than the energy-weighted metric because a 1% shortfall voids the whole
    hour.
    """
    if demand.calendar != supply.calendar:
        raise ValueError("demand and supply must share a calendar")
    covered = np.count_nonzero(supply.values + tolerance_mw >= demand.values)
    return covered / demand.calendar.n_hours


def coverage_percent(coverage_fraction: float) -> float:
    """Convert a coverage fraction to the percentage the paper reports."""
    if not 0.0 <= coverage_fraction <= 1.0:
        raise ValueError(f"coverage fraction must be in [0, 1], got {coverage_fraction}")
    return coverage_fraction * 100.0


def is_full_coverage(coverage_fraction: float, tolerance: float = 1e-6) -> bool:
    """``True`` when a design achieves 100% 24/7 coverage (a Fig. 15 star)."""
    return coverage_fraction >= 1.0 - tolerance
