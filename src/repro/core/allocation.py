"""Allocating a fleet-wide renewable budget across sites.

The paper's site-selection finding — Iowa, Nebraska, and hybrid regions
minimize carbon because their supply valleys are shallowest — begs the
operator's next question: *given a fixed total number of megawatts to buy,
where should each one go?*  This module answers it with greedy marginal
allocation: the budget is handed out in increments, each going to the site
where it currently buys the largest operational-carbon reduction (counting
its own embodied cost).

Greedy increments are near-optimal here because each site's carbon saving
is a diminishing-returns function of its investment (the paper's Fig. 8
curves), making the fleet objective close to separable-concave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..carbon import operational_carbon_tons
from ..grid import RenewableInvestment
from .evaluate import SiteContext, build_site_context


@dataclass(frozen=True)
class AllocationStep:
    """One increment of the greedy allocation trace."""

    state: str
    increment_mw: float
    marginal_tons_per_mw: float
    cumulative_mw: float


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of allocating a renewable budget across a fleet.

    Attributes
    ----------
    allocations:
        Final MW of investment per site.
    steps:
        The greedy trace, in allocation order.
    total_budget_mw:
        The budget that was distributed.
    baseline_tons:
        Fleet annual carbon with zero new investment.
    final_tons:
        Fleet annual carbon after allocation (operational + farm embodied).
    """

    allocations: Dict[str, float]
    steps: Tuple[AllocationStep, ...]
    total_budget_mw: float
    baseline_tons: float
    final_tons: float

    def savings_tons(self) -> float:
        """Annual carbon removed by the allocated budget."""
        return self.baseline_tons - self.final_tons


def _site_total_tons(context: SiteContext, invested_mw: float) -> float:
    """Annual operational + farm-embodied carbon at an investment level.

    Investment splits across the site's available resources evenly (both
    where the grid has both, else all into the available one).
    """
    if context.supports_solar and context.supports_wind:
        investment = RenewableInvestment(solar_mw=invested_mw / 2, wind_mw=invested_mw / 2)
    elif context.supports_wind:
        investment = RenewableInvestment(wind_mw=invested_mw)
    else:
        investment = RenewableInvestment(solar_mw=invested_mw)
    from ..grid import scale_trace_to_capacity

    solar_trace = scale_trace_to_capacity(context.grid.solar, investment.solar_mw)
    wind_trace = scale_trace_to_capacity(context.grid.wind, investment.wind_mw)
    supply = solar_trace + wind_trace
    grid_import = (context.demand.power - supply).positive_part()
    operational = operational_carbon_tons(grid_import, context.grid_intensity)
    embodied = context.embodied.renewables_annual_tons(solar_trace, wind_trace)
    return operational + embodied


def allocate_budget(
    states: Sequence[str],
    total_budget_mw: float,
    increment_mw: float = 10.0,
    year: int = 2020,
    seed: int = 0,
) -> AllocationResult:
    """Greedily distribute a renewable budget across datacenter sites.

    Parameters
    ----------
    states:
        Table-1 site codes competing for the budget.
    total_budget_mw:
        Megawatts of nameplate renewables to hand out.
    increment_mw:
        Granularity of each greedy step.

    Notes
    -----
    Increments may stop being spent when no site's marginal increment
    reduces total carbon (operational savings below embodied cost) — the
    result then allocates less than the full budget, which is itself a
    finding: the carbon-optimal spend is below the available budget.
    """
    if not states:
        raise ValueError("need at least one site")
    if len(set(states)) != len(states):
        raise ValueError(f"site codes must be distinct, got {list(states)}")
    if total_budget_mw < 0:
        raise ValueError(f"budget must be non-negative, got {total_budget_mw}")
    if increment_mw <= 0:
        raise ValueError(f"increment must be positive, got {increment_mw}")

    contexts = {state: build_site_context(state, year=year, seed=seed) for state in states}
    allocations = {state: 0.0 for state in states}
    current_tons = {
        state: _site_total_tons(contexts[state], 0.0) for state in states
    }
    baseline = sum(current_tons.values())

    steps = []
    remaining = total_budget_mw
    while remaining >= increment_mw - 1e-9:
        best_state = None
        best_delta = 0.0
        best_new_tons = 0.0
        for state in states:
            candidate = _site_total_tons(
                contexts[state], allocations[state] + increment_mw
            )
            delta = current_tons[state] - candidate
            if delta > best_delta:
                best_state = state
                best_delta = delta
                best_new_tons = candidate
        if best_state is None:
            break  # no increment pays for its own embodied carbon
        allocations[best_state] += increment_mw
        current_tons[best_state] = best_new_tons
        remaining -= increment_mw
        steps.append(
            AllocationStep(
                state=best_state,
                increment_mw=increment_mw,
                marginal_tons_per_mw=best_delta / increment_mw,
                cumulative_mw=allocations[best_state],
            )
        )

    return AllocationResult(
        allocations=allocations,
        steps=tuple(steps),
        total_budget_mw=total_budget_mw,
        baseline_tons=baseline,
        final_tons=sum(current_tons.values()),
    )
