"""Core of the reproduction: coverage, design space, evaluation, optimizer."""

from .coverage import (
    coverage_from_grid_import,
    coverage_percent,
    hourly_coverage_fraction,
    is_full_coverage,
    renewable_coverage,
)
from .allocation import AllocationResult, AllocationStep, allocate_budget
from .design import (
    DesignPoint,
    DesignSpace,
    DesignSpaceError,
    Strategy,
    default_design_space,
)
from .evaluate import (
    DesignEvaluation,
    SiteContext,
    SupplyProjectionCache,
    build_site_context,
    context_cache_size,
    evaluate_design,
    set_context_cache_limit,
)
from .engine import SiteRun, SweepEngine, sweep_chunk_size
from .explorer import CarbonExplorer
from .fleet import (
    FleetInterrupted,
    FleetResult,
    FleetSweep,
    SiteStatus,
    SiteSweep,
    fleet_checkpoint_path,
    prepare_fleet,
    sweep_fleet,
)
from .optimizer import (
    OptimizationResult,
    optimize,
    optimize_all_strategies,
    optimize_fleet,
    strategy_checkpoint_path,
)
from .shm import (
    SharedContextError,
    SharedSiteContext,
    SiteContextHandle,
    attach_context,
    share_context,
    shared_memory_available,
)
from .pareto import dominates, frontier_tail_ratio, knee_point, pareto_frontier
from .refine import (
    FrontierRefinementResult,
    RefinementResult,
    refine_frontier,
    refine_optimize,
)
from .report import ReportOptions, site_report
from .robustness import RobustnessReport, evaluate_across_years
from .sensitivity import (
    PAPER_COEFFICIENT_RANGES,
    SensitivityRecord,
    SensitivityReport,
    sensitivity_analysis,
)

__all__ = [
    "AllocationResult",
    "AllocationStep",
    "allocate_budget",
    "coverage_from_grid_import",
    "coverage_percent",
    "hourly_coverage_fraction",
    "is_full_coverage",
    "renewable_coverage",
    "DesignPoint",
    "DesignSpace",
    "DesignSpaceError",
    "Strategy",
    "default_design_space",
    "DesignEvaluation",
    "SiteContext",
    "SupplyProjectionCache",
    "build_site_context",
    "context_cache_size",
    "evaluate_design",
    "set_context_cache_limit",
    "CarbonExplorer",
    "SiteRun",
    "SweepEngine",
    "sweep_chunk_size",
    "FleetInterrupted",
    "FleetResult",
    "FleetSweep",
    "SiteStatus",
    "SiteSweep",
    "fleet_checkpoint_path",
    "prepare_fleet",
    "sweep_fleet",
    "OptimizationResult",
    "optimize",
    "optimize_all_strategies",
    "optimize_fleet",
    "strategy_checkpoint_path",
    "SharedContextError",
    "SharedSiteContext",
    "SiteContextHandle",
    "attach_context",
    "share_context",
    "shared_memory_available",
    "FrontierRefinementResult",
    "RefinementResult",
    "refine_frontier",
    "refine_optimize",
    "ReportOptions",
    "site_report",
    "RobustnessReport",
    "evaluate_across_years",
    "PAPER_COEFFICIENT_RANGES",
    "SensitivityRecord",
    "SensitivityReport",
    "sensitivity_analysis",
    "dominates",
    "frontier_tail_ratio",
    "knee_point",
    "pareto_frontier",
]
