"""Exhaustive carbon minimization over the design space (paper §5, Fig. 13).

    "Carbon Explorer exhaustively searches the design space to minimize the
    sum of operational and embodied carbon. ... Finally, Carbon Explorer
    outputs the carbon-optimal investments in renewable energy generation,
    battery capacity, and server capacity."

The optimizer evaluates every point of a :class:`DesignSpace` grid under a
strategy and returns the minimizer along with every evaluation (the sweeps
double as the raw data for the Pareto and Fig. 15 analyses).
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import ProgressCallback, get_logger, inc, set_gauge, span
from .design import DesignPoint, DesignSpace, Strategy, default_design_space
from .evaluate import DesignEvaluation, SiteContext, evaluate_design

_log = get_logger("core.optimizer")

#: Chunks submitted per worker; >1 so a slow chunk doesn't straggle the pool.
_CHUNKS_PER_WORKER = 4

#: The site context each worker process evaluates against, shipped once via
#: the pool initializer instead of once per grid point.
_worker_context: Optional[SiteContext] = None


def _init_worker(context: SiteContext) -> None:
    global _worker_context
    _worker_context = context


def _evaluate_chunk(
    start: int, designs: Sequence[DesignPoint], strategy: Strategy
) -> Tuple[int, List[DesignEvaluation]]:
    """Evaluate one contiguous slice of the grid in a worker process."""
    assert _worker_context is not None, "worker pool initializer did not run"
    return start, [
        evaluate_design(_worker_context, design, strategy) for design in designs
    ]


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of one exhaustive sweep.

    Attributes
    ----------
    strategy:
        The solution portfolio the sweep was constrained to.
    best:
        The evaluation minimizing total (operational + embodied) carbon.
    evaluations:
        Every grid point evaluated, in grid order.
    """

    strategy: Strategy
    best: DesignEvaluation
    evaluations: Tuple[DesignEvaluation, ...]

    @property
    def n_evaluated(self) -> int:
        """Number of designs the sweep evaluated."""
        return len(self.evaluations)

    def best_coverage(self) -> float:
        """Coverage of the carbon-optimal design (a Fig. 15 annotation)."""
        return self.best.coverage


def _sweep_serial(
    context: SiteContext,
    space: DesignSpace,
    strategy: Strategy,
    total: int,
    progress: Optional[ProgressCallback],
) -> List[DesignEvaluation]:
    evaluations = []
    for index, design in enumerate(space.points(strategy)):
        evaluations.append(evaluate_design(context, design, strategy))
        if progress is not None:
            progress(index + 1, total, strategy.value)
    return evaluations


def _sweep_parallel(
    context: SiteContext,
    space: DesignSpace,
    strategy: Strategy,
    total: int,
    progress: Optional[ProgressCallback],
    workers: int,
) -> List[DesignEvaluation]:
    """Fan contiguous grid chunks across a process pool, grid order preserved.

    Each chunk carries its starting grid index, so results are reassembled
    into grid order no matter the completion order — a parallel sweep yields
    the identical evaluation sequence to a serial one.  ``progress`` fires
    once per completed chunk with the cumulative count.  Worker-process
    metric registries are not merged back; the parent counts the evaluations
    itself.
    """
    designs = list(space.points(strategy))
    chunk_size = max(1, math.ceil(total / (workers * _CHUNKS_PER_WORKER)))
    results: List[Optional[DesignEvaluation]] = [None] * total
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_init_worker, initargs=(context,)
    ) as pool:
        futures = [
            pool.submit(_evaluate_chunk, start, designs[start : start + chunk_size], strategy)
            for start in range(0, total, chunk_size)
        ]
        done = 0
        for future in as_completed(futures):
            start, chunk_evaluations = future.result()
            results[start : start + len(chunk_evaluations)] = chunk_evaluations
            done += len(chunk_evaluations)
            if progress is not None:
                progress(done, total, strategy.value)
    inc("designs_evaluated", total)
    return results  # type: ignore[return-value]  # every slot is filled


def optimize(
    context: SiteContext,
    space: DesignSpace,
    strategy: Strategy,
    progress: Optional[ProgressCallback] = None,
    workers: int = 1,
) -> OptimizationResult:
    """Exhaustively evaluate ``space`` under ``strategy`` for one site.

    ``progress``, when given, is called after every grid point with
    ``(evaluated, total, strategy_name)`` — see
    :class:`repro.obs.ProgressCallback`.  With ``workers > 1`` the grid is
    fanned out across a process pool (the context ships to each worker once)
    and ``progress`` fires per completed chunk instead of per point; the
    returned evaluations are identical to a serial sweep, in grid order.

    Raises
    ------
    ValueError
        If ``workers < 1``, or if the constrained space is empty (it never
        is for a valid :class:`DesignSpace`, which requires non-empty axes).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    total = space.size(strategy)
    _log.info(
        "sweep start: site=%s strategy=%s grid_points=%d workers=%d",
        context.site_state,
        strategy.value,
        total,
        workers,
    )
    with span(
        "optimize",
        strategy=strategy.value,
        site=context.site_state,
        grid_points=total,
        workers=workers,
    ):
        if workers == 1 or total <= 1:
            evaluations = _sweep_serial(context, space, strategy, total, progress)
        else:
            evaluations = _sweep_parallel(
                context, space, strategy, total, progress, workers
            )
    if not evaluations:
        raise ValueError("design space produced no points")
    best = min(evaluations, key=lambda e: e.total_tons)
    inc("sweeps_completed")
    set_gauge("sweep_grid_points", total)
    _log.info(
        "sweep done: site=%s strategy=%s best_total_tons=%.1f coverage=%.3f",
        context.site_state,
        strategy.value,
        best.total_tons,
        best.coverage,
    )
    return OptimizationResult(
        strategy=strategy, best=best, evaluations=tuple(evaluations)
    )


def optimize_all_strategies(
    context: SiteContext,
    space: Optional[DesignSpace] = None,
    progress: Optional[ProgressCallback] = None,
    workers: int = 1,
) -> Dict[Strategy, OptimizationResult]:
    """Run the exhaustive sweep for all four strategies of Fig. 15.

    When ``space`` is omitted a :func:`default_design_space` is built from
    the site's size and the local grid's available resources.  ``progress``
    and ``workers`` are forwarded to each per-strategy :func:`optimize`
    call.
    """
    if space is None:
        space = default_design_space(
            avg_power_mw=context.demand.avg_power_mw,
            supports_solar=context.supports_solar,
            supports_wind=context.supports_wind,
        )
    return {
        strategy: optimize(context, space, strategy, progress=progress, workers=workers)
        for strategy in Strategy
    }
