"""Exhaustive carbon minimization over the design space (paper §5, Fig. 13).

    "Carbon Explorer exhaustively searches the design space to minimize the
    sum of operational and embodied carbon. ... Finally, Carbon Explorer
    outputs the carbon-optimal investments in renewable energy generation,
    battery capacity, and server capacity."

The optimizer evaluates every point of a :class:`DesignSpace` grid under a
strategy and returns the minimizer along with every evaluation (the sweeps
double as the raw data for the Pareto and Fig. 15 analyses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..obs import ProgressCallback, get_logger, inc, set_gauge, span
from .design import DesignSpace, Strategy, default_design_space
from .evaluate import DesignEvaluation, SiteContext, evaluate_design

_log = get_logger("core.optimizer")


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of one exhaustive sweep.

    Attributes
    ----------
    strategy:
        The solution portfolio the sweep was constrained to.
    best:
        The evaluation minimizing total (operational + embodied) carbon.
    evaluations:
        Every grid point evaluated, in grid order.
    """

    strategy: Strategy
    best: DesignEvaluation
    evaluations: Tuple[DesignEvaluation, ...]

    @property
    def n_evaluated(self) -> int:
        """Number of designs the sweep evaluated."""
        return len(self.evaluations)

    def best_coverage(self) -> float:
        """Coverage of the carbon-optimal design (a Fig. 15 annotation)."""
        return self.best.coverage


def optimize(
    context: SiteContext,
    space: DesignSpace,
    strategy: Strategy,
    progress: Optional[ProgressCallback] = None,
) -> OptimizationResult:
    """Exhaustively evaluate ``space`` under ``strategy`` for one site.

    ``progress``, when given, is called after every grid point with
    ``(evaluated, total, strategy_name)`` — see
    :class:`repro.obs.ProgressCallback`.

    Raises
    ------
    ValueError
        If the constrained space is empty (it never is for a valid
        :class:`DesignSpace`, which requires non-empty axes).
    """
    total = space.size(strategy)
    _log.info(
        "sweep start: site=%s strategy=%s grid_points=%d",
        context.site_state,
        strategy.value,
        total,
    )
    with span(
        "optimize",
        strategy=strategy.value,
        site=context.site_state,
        grid_points=total,
    ):
        evaluations = []
        for index, design in enumerate(space.points(strategy)):
            evaluations.append(evaluate_design(context, design, strategy))
            if progress is not None:
                progress(index + 1, total, strategy.value)
    if not evaluations:
        raise ValueError("design space produced no points")
    best = min(evaluations, key=lambda e: e.total_tons)
    inc("sweeps_completed")
    set_gauge("sweep_grid_points", total)
    _log.info(
        "sweep done: site=%s strategy=%s best_total_tons=%.1f coverage=%.3f",
        context.site_state,
        strategy.value,
        best.total_tons,
        best.coverage,
    )
    return OptimizationResult(
        strategy=strategy, best=best, evaluations=tuple(evaluations)
    )


def optimize_all_strategies(
    context: SiteContext,
    space: Optional[DesignSpace] = None,
    progress: Optional[ProgressCallback] = None,
) -> Dict[Strategy, OptimizationResult]:
    """Run the exhaustive sweep for all four strategies of Fig. 15.

    When ``space`` is omitted a :func:`default_design_space` is built from
    the site's size and the local grid's available resources.  ``progress``
    is forwarded to each per-strategy :func:`optimize` call.
    """
    if space is None:
        space = default_design_space(
            avg_power_mw=context.demand.avg_power_mw,
            supports_solar=context.supports_solar,
            supports_wind=context.supports_wind,
        )
    return {
        strategy: optimize(context, space, strategy, progress=progress)
        for strategy in Strategy
    }
