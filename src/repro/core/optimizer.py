"""Exhaustive carbon minimization over the design space (paper §5, Fig. 13).

    "Carbon Explorer exhaustively searches the design space to minimize the
    sum of operational and embodied carbon. ... Finally, Carbon Explorer
    outputs the carbon-optimal investments in renewable energy generation,
    battery capacity, and server capacity."

The optimizer evaluates every point of a :class:`DesignSpace` grid under a
strategy and returns the minimizer along with every evaluation (the sweeps
double as the raw data for the Pareto and Fig. 15 analyses).

Sweeps are *resilient* (see :mod:`repro.resilience` and DESIGN.md's
"Resilience" section): the grid is processed in contiguous chunks; failed
chunks — crashed workers, poisoned pools, stalls past a per-chunk timeout,
corrupt payloads — are retried with exponential backoff and finally
re-evaluated serially in-process, so a sweep always completes with results
bitwise-identical to a fault-free serial run.  With ``checkpoint=`` every
completed chunk is journaled as it finishes, and ``resume=True`` skips the
journaled grid indices after validating the journal's fingerprint against
the exact sweep being run.

Since the sweep-engine refactor this module is *policy*, not mechanism:
:func:`optimize` runs a one-site :class:`repro.core.engine.SweepEngine`
(bitwise-identical results, same signature), translating its historical
retry knobs — ``max_retries``, exponential ``backoff_s``, a fixed
``chunk_timeout`` stall budget — into the engine's per-chunk accounting.
All pool, shared-memory, journal, and commit mechanics live in
:mod:`repro.core.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import ProgressCallback, SweepEvents, get_logger, inc, set_gauge, span
from ..resilience import AdaptiveChunkTimeout, FaultPlan, RetryPolicy, SweepInterrupted
from ..resilience.checkpoint import PathLike, sweep_journal_path
from .design import DesignPoint, DesignSpace, Strategy, default_design_space
from .engine import (  # noqa: F401  (re-exported: chunk planning is engine-owned)
    _TARGET_CHUNKS,
    _chunk_missing_indices,
    _ContextPayload,
    _mp_context,
    _SiteFaultAdapter,
    SweepEngine,
    sweep_chunk_size,
)
from .evaluate import (
    DesignEvaluation,
    SiteContext,
    evaluate_block_sites,
)

_log = get_logger("core.optimizer")


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of one exhaustive sweep.

    Attributes
    ----------
    strategy:
        The solution portfolio the sweep was constrained to.
    best:
        The evaluation minimizing total (operational + embodied) carbon.
    evaluations:
        Every grid point evaluated, in grid order.
    """

    strategy: Strategy
    best: DesignEvaluation
    evaluations: Tuple[DesignEvaluation, ...]

    @property
    def n_evaluated(self) -> int:
        """Number of designs the sweep evaluated."""
        return len(self.evaluations)

    def best_coverage(self) -> float:
        """Coverage of the carbon-optimal design (a Fig. 15 annotation)."""
        return self.best.coverage


def optimize(
    context: SiteContext,
    space: DesignSpace,
    strategy: Strategy,
    progress: Optional[ProgressCallback] = None,
    workers: int = 1,
    max_retries: int = 2,
    chunk_timeout: Optional[float] = None,
    backoff_s: float = 0.1,
    checkpoint: Optional[PathLike] = None,
    resume: bool = False,
    faults: Optional[FaultPlan] = None,
    shm: bool = True,
    events: Optional[SweepEvents] = None,
    batch_size: Optional[int] = None,
) -> OptimizationResult:
    """Exhaustively evaluate ``space`` under ``strategy`` for one site.

    ``progress``, when given, is called with ``(done, total,
    strategy_name)`` — ``done`` is a completed *count*, not a grid
    position; see :class:`repro.obs.ProgressCallback` for the exact
    semantics (serial sweeps report per point, parallel sweeps per
    completed chunk, resumed sweeps start at the checkpointed count).

    ``events``, when given, receives the sweep's lifecycle on a
    :class:`repro.obs.SweepEvents` bus: ``sweep_started``, one
    ``chunk_completed`` per committed chunk (chunks restored from a
    resumed journal are mirrored with ``resumed: true`` before any live
    chunk), ``chunk_retried`` per re-submitted parallel chunk,
    ``frontier_updated`` whenever a committed chunk lowers the running
    best total carbon, and ``sweep_finished`` with the optimum.  Grid
    chunking is a pure function of the grid size, so the
    ``chunk_completed`` count is identical serial vs. parallel; the bus
    is never closed here (callers may run several sweeps over one bus).

    Resilience (see :mod:`repro.resilience`):

    * ``workers > 1`` fans grid chunks across a process pool; a failed or
      stalled chunk is retried up to ``max_retries`` times with
      exponential backoff (``backoff_s`` base, doubling per attempt) and
      finally re-evaluated serially in-process, so the sweep completes
      with evaluations bitwise-identical to a serial run regardless of
      worker crashes.  ``chunk_timeout`` (seconds) is the stall detector:
      a chunk that produces no result within it is failed and retried.
    * ``checkpoint`` names a journal file appended to as chunks finish;
      ``resume=True`` loads it, validates its fingerprint against this
      exact sweep, and skips already-journaled grid indices.  An
      interrupt (Ctrl-C) flushes the journal and raises
      :class:`repro.resilience.SweepInterrupted` with the partial
      progress.
    * ``faults`` injects deterministic worker kills / delays / corrupt
      payloads (tests and CI only).
    * ``shm`` (default on) ships the context to workers through the
      zero-copy shared-memory trace plane (:mod:`repro.core.shm`): the
      traces are packed into one segment and each pool initializer gets a
      <1 KB :class:`~repro.core.shm.SiteContextHandle` instead of the
      ~850 KB context pickle.  The segment is created once per sweep,
      re-attached by a rebuilt pool's workers, and unlinked on every exit
      path (completion, exception, interrupt).  ``shm=False`` — or a
      platform where segment creation fails, which logs a warning —
      falls back to pickling the full context.  Results are bitwise
      identical either way.
    * ``batch_size`` routes every path — serial, parallel workers, the
      post-retry serial fallback, and resumed sweeps — through
      :func:`repro.core.evaluate.evaluate_block`, which tensorizes each
      chunk's design axis into one ``(design, hour)`` kernel call
      (:mod:`repro.kernels.batch`).  Chunks are widened to at least
      ``batch_size`` grid points (still a pure function of the grid and
      this argument, never of ``workers``), and every evaluation stays
      bitwise-identical to the default per-design loop.  ``None`` (the
      default) keeps the legacy per-design path and chunking exactly.

    Raises
    ------
    ValueError
        If ``workers < 1``, ``batch_size < 1``, ``resume`` is requested
        without a ``checkpoint``, or the constrained space is empty.
    repro.resilience.CheckpointError
        If the checkpoint file is damaged.
    repro.resilience.CheckpointMismatchError
        If the checkpoint belongs to a different site/seed/space/strategy.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint path")
    # RetryPolicy validates the retry knobs (and raises the historical
    # messages) even though the engine consumes them piecemeal.
    policy = RetryPolicy(
        max_retries=max_retries,
        backoff_base_s=backoff_s,
        chunk_timeout_s=chunk_timeout,
    )
    total = space.size(strategy)
    site = context.site_state

    if events is not None:
        events.emit(
            "sweep_started",
            site=site,
            strategy=strategy.value,
            total=total,
            workers=workers,
        )

    engine = SweepEngine(
        [(site, context, space)],
        strategy,
        workers=workers,
        fleet=False,
        max_retries=max_retries,
        backoff=policy,
        # A fixed stall budget (None = no stall detection): single-site
        # sweeps never feed the EWMA, preserving the chunk_timeout contract.
        timeout=AdaptiveChunkTimeout(initial_s=chunk_timeout),
        checkpoints={site: checkpoint} if checkpoint is not None else None,
        resume=resume,
        faults=_SiteFaultAdapter(faults) if faults is not None else None,
        shm=shm,
        events=events,
        batch_size=batch_size,
        progress=progress,
    )
    state = engine.states[0]
    try:
        engine.setup()
        _log.info(
            "sweep start: site=%s strategy=%s grid_points=%d workers=%d "
            "pending_chunks=%d resumed_evaluations=%d",
            site,
            strategy.value,
            total,
            workers,
            state.n_chunks,
            engine.done_points,
        )
        with span(
            "optimize",
            strategy=strategy.value,
            site=site,
            grid_points=total,
            workers=workers,
        ):
            engine.dispatch()
    except KeyboardInterrupt:
        if checkpoint is not None:
            raise SweepInterrupted(
                checkpoint=str(checkpoint),
                done=engine.done_points,
                total=total,
                strategy=strategy.value,
            ) from None
        raise
    finally:
        # Deterministic teardown: completion, exceptions, and
        # SweepInterrupted all unlink the shared segment and close the
        # journal here.
        engine.cleanup()

    results = state.results
    if not all(evaluation is not None for evaluation in results):
        raise AssertionError("sweep left unevaluated grid points")  # pragma: no cover
    evaluations = results
    if not evaluations:
        raise ValueError("design space produced no points")
    best = min(evaluations, key=lambda e: e.total_tons)  # type: ignore[union-attr]
    inc("sweeps_completed")
    set_gauge("sweep_grid_points", total)
    if events is not None:
        events.emit(
            "sweep_finished",
            site=site,
            strategy=strategy.value,
            total=total,
            best_total_tons=best.total_tons,
            best_coverage=best.coverage,
        )
    _log.info(
        "sweep done: site=%s strategy=%s best_total_tons=%.1f coverage=%.3f",
        site,
        strategy.value,
        best.total_tons,
        best.coverage,
    )
    return OptimizationResult(
        strategy=strategy, best=best, evaluations=tuple(evaluations)  # type: ignore[arg-type]
    )


def optimize_all_strategies(
    context: SiteContext,
    space: Optional[DesignSpace] = None,
    progress: Optional[ProgressCallback] = None,
    workers: int = 1,
    max_retries: int = 2,
    chunk_timeout: Optional[float] = None,
    backoff_s: float = 0.1,
    checkpoint: Optional[PathLike] = None,
    resume: bool = False,
    faults: Optional[FaultPlan] = None,
    shm: bool = True,
    events: Optional[SweepEvents] = None,
    batch_size: Optional[int] = None,
) -> Dict[Strategy, OptimizationResult]:
    """Run the exhaustive sweep for all four strategies of Fig. 15.

    When ``space`` is omitted a :func:`default_design_space` is built from
    the site's size and the local grid's available resources.  All sweep
    keyword arguments are forwarded to each per-strategy :func:`optimize`
    call; ``checkpoint`` is treated as a *base* path — each strategy
    journals to ``<checkpoint>.<strategy_name>`` (lowercase enum name,
    e.g. ``sweep.ckpt.renewables_battery``) so the four sweeps never share
    a journal.
    """
    if space is None:
        space = default_design_space(
            avg_power_mw=context.demand.avg_power_mw,
            supports_solar=context.supports_solar,
            supports_wind=context.supports_wind,
        )
    return {
        strategy: optimize(
            context,
            space,
            strategy,
            progress=progress,
            workers=workers,
            max_retries=max_retries,
            chunk_timeout=chunk_timeout,
            backoff_s=backoff_s,
            checkpoint=strategy_checkpoint_path(checkpoint, strategy),
            resume=resume,
            faults=faults,
            shm=shm,
            events=events,
            batch_size=batch_size,
        )
        for strategy in Strategy
    }


def optimize_fleet(
    sites: Sequence[Tuple[SiteContext, DesignSpace]],
    strategy: Strategy,
    *,
    batch_size: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[OptimizationResult]:
    """Sweep several sites under one strategy through merged kernel blocks.

    A multi-site study (Fig. 14's three-site column, Fig. 15's thirteen
    regions) runs the same grid at every site.  Per-site sweeps pay the
    batched kernels' near-constant hour-loop dispatch cost once per site;
    this entry point folds the site axis into the design axis instead —
    :func:`repro.core.evaluate.evaluate_block_sites` stacks each site's
    demand trace into a ``(design, hour)`` block row-for-row with its
    supply — so the whole fleet pays that cost once.  Results are
    bitwise-identical to ``[optimize(context, space, strategy,
    batch_size=...) for context, space in sites]``: the kernels are pure
    row-wise lockstep, and strategies (or blocks) that cannot merge fall
    back to per-site evaluation inside ``evaluate_block_sites``.

    ``batch_size`` caps the rows merged into one kernel call (``None``,
    the default, merges the entire fleet — at thirteen sites × a few
    hundred designs the block is tens of MB, far below memory pressure,
    and fewer calls is strictly faster).  ``progress`` receives ``(done,
    total, strategy_name)`` with ``total`` counting rows fleet-wide.

    This is a serial, in-process path: it composes with ``workers=1``
    sweeps only.  Multi-process fleets should keep per-site
    :func:`optimize` calls (the trace plane ships one site per worker).
    """
    sites = [(context, space) for context, space in sites]
    if not sites:
        return []
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    per_site_designs = [
        list(space.points(strategy)) for _, space in sites
    ]
    if any(not designs for designs in per_site_designs):
        raise ValueError("design space produced no points")
    totals = [len(designs) for designs in per_site_designs]
    total = sum(totals)
    rows = [
        (site_index, design)
        for site_index, designs in enumerate(per_site_designs)
        for design in designs
    ]
    chunk_size = total if batch_size is None else batch_size

    collected: List[List[DesignEvaluation]] = [[] for _ in sites]
    done = 0
    with span(
        "optimize_fleet",
        strategy=strategy.value,
        n_sites=len(sites),
        grid_points=total,
    ):
        for start in range(0, total, chunk_size):
            chunk = rows[start : start + chunk_size]
            segments: List[Tuple[SiteContext, List[DesignPoint]]] = []
            segment_sites: List[int] = []
            for site_index, design in chunk:
                if not segment_sites or segment_sites[-1] != site_index:
                    segments.append((sites[site_index][0], []))
                    segment_sites.append(site_index)
                segments[-1][1].append(design)
            evaluated = evaluate_block_sites(segments, strategy)
            for site_index, evaluations in zip(segment_sites, evaluated):
                collected[site_index].extend(evaluations)
                done += len(evaluations)
            if progress is not None:
                progress(done, total, strategy.value)

    results: List[OptimizationResult] = []
    for (context, _), evaluations, site_total in zip(sites, collected, totals):
        if len(evaluations) != site_total:  # pragma: no cover
            raise AssertionError("fleet sweep left unevaluated grid points")
        best = min(evaluations, key=lambda e: e.total_tons)
        inc("sweeps_completed")
        set_gauge("sweep_grid_points", site_total)
        _log.info(
            "fleet sweep done: site=%s strategy=%s best_total_tons=%.1f "
            "coverage=%.3f",
            context.site_state,
            strategy.value,
            best.total_tons,
            best.coverage,
        )
        results.append(
            OptimizationResult(
                strategy=strategy, best=best, evaluations=tuple(evaluations)
            )
        )
    return results


def strategy_checkpoint_path(
    checkpoint: Optional[PathLike], strategy: Strategy
) -> Optional[str]:
    """Per-strategy journal path derived from a base checkpoint path.

    Thin wrapper over :func:`repro.resilience.checkpoint.sweep_journal_path`
    (the one suffix scheme shared with per-site fleet journals).
    """
    return sweep_journal_path(checkpoint, strategy.name)
