"""Exhaustive carbon minimization over the design space (paper §5, Fig. 13).

    "Carbon Explorer exhaustively searches the design space to minimize the
    sum of operational and embodied carbon. ... Finally, Carbon Explorer
    outputs the carbon-optimal investments in renewable energy generation,
    battery capacity, and server capacity."

The optimizer evaluates every point of a :class:`DesignSpace` grid under a
strategy and returns the minimizer along with every evaluation (the sweeps
double as the raw data for the Pareto and Fig. 15 analyses).

Sweeps are *resilient* (see :mod:`repro.resilience` and DESIGN.md's
"Resilience" section): the grid is processed in contiguous chunks; failed
chunks — crashed workers, poisoned pools, stalls past a per-chunk timeout,
corrupt payloads — are retried with exponential backoff and finally
re-evaluated serially in-process, so a sweep always completes with results
bitwise-identical to a fault-free serial run.  With ``checkpoint=`` every
completed chunk is journaled as it finishes, and ``resume=True`` skips the
journaled grid indices after validating the journal's fingerprint against
the exact sweep being run.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..obs import (
    ProgressCallback,
    SweepEvents,
    export_spans,
    get_logger,
    get_tracer,
    inc,
    merge_snapshot,
    metrics_enabled,
    metrics_snapshot,
    reset_metrics,
    reset_tracing,
    set_gauge,
    span,
    tracing_enabled,
)
from ..resilience import (
    CheckpointJournal,
    FaultAction,
    FaultKind,
    FaultPlan,
    JournalHeader,
    JOURNAL_VERSION,
    RetryPolicy,
    SweepInterrupted,
    corrupt_payload,
    execute_pre_fault,
    load_resumable_chunks,
    sweep_fingerprint,
    validate_chunk_result,
)
from ..resilience.checkpoint import PathLike
from .design import DesignPoint, DesignSpace, Strategy, default_design_space
from .evaluate import (
    DesignEvaluation,
    SiteContext,
    evaluate_block,
    evaluate_block_sites,
    evaluate_design,
)
from .shm import (
    SharedContextError,
    SharedSiteContext,
    SiteContextHandle,
    attach_context,
    handle_pickle_bytes,
    share_context,
)

_log = get_logger("core.optimizer")

#: Target number of grid chunks per sweep.  Deliberately a pure function
#: of the grid size, *not* of ``workers``: identical chunk boundaries
#: serial vs. parallel are what make the sweep-event stream (one
#: ``chunk_completed`` per chunk), the checkpoint journal granularity,
#: and the per-chunk span histograms worker-count independent.  32 keeps
#: ≥4 chunks in flight per worker for pools of up to 8, so a slow chunk
#: still cannot straggle the pool.
_TARGET_CHUNKS = 32

#: A chunk of contiguous grid work: (ordinal, start index, stop index).
_Chunk = Tuple[int, int, int]

#: Called with each completed chunk: (start, evaluations, worker telemetry).
#: Telemetry is a worker's metrics snapshot, optionally extended with a
#: ``"spans"`` record list and the worker ``"pid"`` (see
#: :func:`_evaluate_chunk`); ``None`` when nothing was collected.
_CommitFn = Callable[[int, List[DesignEvaluation], Optional[Dict[str, Any]]], None]

#: What the pool initializer ships to workers: a tiny shared-memory handle
#: (the default trace plane) or, with ``shm=False`` / on platforms without
#: shared memory, the full pickled context.
_ContextPayload = Union[SiteContext, SiteContextHandle]

#: The site context each worker process evaluates against, shipped once via
#: the pool initializer instead of once per grid point.
_worker_context: Optional[SiteContext] = None

#: Whether workers collect a per-chunk metrics snapshot for the parent.
_worker_collect_metrics = False

#: Whether workers record spans and ship them back per chunk (set when the
#: parent's tracer is enabled at pool creation).
_worker_collect_spans = False

#: Set when this worker attached a shared segment but has not yet reported
#: it: ``_evaluate_chunk`` resets the worker metrics registry at chunk
#: start, so the ``context_attach_count`` increment must land *after* the
#: first reset to survive into a merged snapshot.
_worker_attach_unreported = False


def _init_worker(
    payload: _ContextPayload, collect_metrics: bool, collect_spans: bool = False
) -> None:
    global _worker_context, _worker_collect_metrics, _worker_collect_spans
    global _worker_attach_unreported
    if isinstance(payload, SiteContextHandle):
        _worker_context = attach_context(payload)
        _worker_attach_unreported = True
    else:
        _worker_context = payload
    _worker_collect_metrics = collect_metrics
    _worker_collect_spans = collect_spans
    if collect_metrics:
        from ..obs import enable_metrics

        enable_metrics()
    if collect_spans:
        from ..obs import enable_tracing

        enable_tracing()


def _mp_context() -> Optional[multiprocessing.context.BaseContext]:
    """Start-method override for sweep pools (``REPRO_MP_START_METHOD``).

    Unset means the platform default.  CI sets ``spawn`` so the trace
    plane is exercised without fork inheritance; ``fork``/``forkserver``
    are accepted where the platform provides them.
    """
    method = os.environ.get("REPRO_MP_START_METHOD")
    if not method:
        return None
    return multiprocessing.get_context(method)


def _evaluate_chunk(
    start: int,
    designs: Sequence[DesignPoint],
    strategy: Strategy,
    fault: Optional[FaultAction] = None,
    batched: bool = False,
) -> Tuple[int, List[DesignEvaluation], Optional[Dict[str, Any]]]:
    """Evaluate one contiguous slice of the grid in a worker process.

    Returns ``(start, evaluations, telemetry)`` where ``telemetry`` is
    this chunk's worker-registry metrics snapshot (reset at chunk start
    so snapshots are disjoint and the parent can merge counters and
    histogram buckets additively), extended — when the parent was tracing
    at pool creation — with the chunk's exported span records under
    ``"spans"`` and this worker's ``"pid"`` so the parent can render them
    on a per-process Chrome lane.  ``None`` when nothing is collected.
    ``fault`` is the test/CI fault injected into this attempt, if any.
    ``batched`` routes the slice through :func:`evaluate_block` (bitwise
    identical to the per-design loop; see ``optimize(batch_size=...)``).
    """
    global _worker_attach_unreported
    assert _worker_context is not None, "worker pool initializer did not run"
    execute_pre_fault(fault)
    if _worker_collect_metrics:
        reset_metrics()
        if _worker_attach_unreported:
            inc("context_attach_count")
            _worker_attach_unreported = False
    if _worker_collect_spans:
        # drop_open: a fork-started worker inherits the parent's open
        # span stack; without dropping it our spans never become roots.
        reset_tracing(drop_open=True)
    with span("evaluate_chunk", start=start, n_designs=len(designs)):
        evaluations: List[Any]
        if batched:
            evaluations = list(evaluate_block(_worker_context, designs, strategy))
        else:
            evaluations = [
                evaluate_design(_worker_context, design, strategy)
                for design in designs
            ]
    telemetry: Optional[Dict[str, Any]] = (
        metrics_snapshot() if _worker_collect_metrics else None
    )
    if _worker_collect_spans:
        telemetry = dict(telemetry) if telemetry is not None else {}
        telemetry["spans"] = export_spans()
        telemetry["pid"] = os.getpid()
    if fault is not None and fault.kind is FaultKind.CORRUPT:
        evaluations = corrupt_payload(evaluations)
    return start, evaluations, telemetry


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of one exhaustive sweep.

    Attributes
    ----------
    strategy:
        The solution portfolio the sweep was constrained to.
    best:
        The evaluation minimizing total (operational + embodied) carbon.
    evaluations:
        Every grid point evaluated, in grid order.
    """

    strategy: Strategy
    best: DesignEvaluation
    evaluations: Tuple[DesignEvaluation, ...]

    @property
    def n_evaluated(self) -> int:
        """Number of designs the sweep evaluated."""
        return len(self.evaluations)

    def best_coverage(self) -> float:
        """Coverage of the carbon-optimal design (a Fig. 15 annotation)."""
        return self.best.coverage


def sweep_chunk_size(total: int, batch_size: Optional[int] = None) -> int:
    """Chunk width for a sweep over ``total`` grid points.

    A pure function of the grid (and an explicit ``batch_size``), never of
    ``workers`` — identical chunk boundaries serial vs. parallel vs. fleet
    are what make the ``chunk_completed`` event stream, the checkpoint
    journal granularity, and the per-chunk span histograms engine
    independent.  The fleet scheduler (:mod:`repro.core.fleet`) uses the
    same function so its per-site journals stay interchangeable with
    :func:`optimize`'s.
    """
    size = max(1, math.ceil(total / _TARGET_CHUNKS))
    if batch_size is not None:
        size = max(size, batch_size)
    return size


def _chunk_missing_indices(
    filled: Sequence[bool], chunk_size: int
) -> List[_Chunk]:
    """Contiguous runs of unfilled grid indices, split into chunks.

    Ordinals number the chunks in grid order; they are what a
    :class:`FaultPlan` addresses and they stay stable across retry rounds.
    """
    chunks: List[_Chunk] = []
    total = len(filled)
    index = 0
    while index < total:
        if filled[index]:
            index += 1
            continue
        run_start = index
        while index < total and not filled[index]:
            index += 1
        for start in range(run_start, index, chunk_size):
            chunks.append((len(chunks), start, min(start + chunk_size, index)))
    return chunks


def _sweep_serial(
    context: SiteContext,
    designs: Sequence[DesignPoint],
    strategy: Strategy,
    chunks: Sequence[_Chunk],
    commit: _CommitFn,
    point_progress: Optional[Callable[[], None]],
    batched: bool = False,
) -> None:
    """Evaluate chunks in-process, committing (journaling) chunk by chunk.

    ``point_progress`` preserves the historical serial behaviour of one
    progress callback per grid point (parallel sweeps report per chunk;
    a batched chunk reports its points as the block completes).  Each
    chunk is wrapped in the same ``evaluate_chunk`` span a worker
    process opens, so span histograms are identical serial vs. parallel.
    """
    for _, start, stop in chunks:
        evaluations = []
        with span("evaluate_chunk", start=start, n_designs=stop - start):
            if batched:
                evaluations = list(
                    evaluate_block(context, designs[start:stop], strategy)
                )
                if point_progress is not None:
                    for _ in evaluations:
                        point_progress()
            else:
                for index in range(start, stop):
                    evaluations.append(
                        evaluate_design(context, designs[index], strategy)
                    )
                    if point_progress is not None:
                        point_progress()
        commit(start, evaluations, None)


def _sweep_parallel(
    context: SiteContext,
    payload: _ContextPayload,
    designs: Sequence[DesignPoint],
    strategy: Strategy,
    chunks: Sequence[_Chunk],
    workers: int,
    policy: RetryPolicy,
    faults: Optional[FaultPlan],
    commit: _CommitFn,
    events: Optional[SweepEvents] = None,
    site: str = "",
    strategy_label: str = "",
    batched: bool = False,
) -> None:
    """Fan chunks across a process pool, surviving chunk/worker failures.

    Each round submits every still-pending chunk to a fresh pool (a
    ``BrokenProcessPool`` poisons the whole executor, so pools are
    per-round).  ``payload`` is what each round's pool initializer ships:
    the shared-memory :class:`SiteContextHandle` by default — every fresh
    retry-round pool re-attaches the *same* segment — or the full pickled
    ``context`` when the trace plane is off.  The serial fallback below
    always uses the parent's own in-process ``context``.  A completed
    chunk is shape-validated and committed; a failed one — worker crash,
    broken pool, validation failure, or a stall in which *no* chunk
    completes within ``policy.chunk_timeout_s`` — is carried into the
    next round after an exponential-backoff pause.  Chunks still pending
    after ``policy.max_retries`` rounds degrade to serial in-process
    evaluation, so the sweep always completes.  Completion order cannot
    reorder results: chunks carry their starting grid index and are
    written back by index.
    """
    pending: List[_Chunk] = list(chunks)
    attempt = 0
    while pending and attempt <= policy.max_retries:
        if attempt > 0:
            inc("chunk_retries", len(pending))
            if events is not None:
                for ordinal, start, stop in pending:
                    events.emit(
                        "chunk_retried",
                        site=site,
                        strategy=strategy_label,
                        ordinal=ordinal,
                        start=start,
                        stop=stop,
                        attempt=attempt,
                    )
            pause = policy.backoff_s(attempt)
            _log.info(
                "retry round %d/%d: re-submitting %d chunks after %.2fs backoff",
                attempt,
                policy.max_retries,
                len(pending),
                pause,
            )
            if pause > 0:
                time.sleep(pause)
        pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(payload, metrics_enabled(), tracing_enabled()),
            mp_context=_mp_context(),
        )
        failed: List[_Chunk] = []
        committed: set = set()
        try:
            futures: Dict[Future, _Chunk] = {}
            for chunk in pending:
                ordinal, start, stop = chunk
                fault = faults.action_for(ordinal, attempt) if faults else None
                futures[
                    pool.submit(
                        _evaluate_chunk,
                        start,
                        designs[start:stop],
                        strategy,
                        fault,
                        batched,
                    )
                ] = chunk
            not_done = set(futures)
            while not_done:
                done, not_done = wait(
                    not_done,
                    timeout=policy.chunk_timeout_s,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    # Stall: nothing completed within the timeout window.
                    # Fail every outstanding chunk of this round; the
                    # injected/real straggler gets retried or degraded.
                    inc("chunk_failures", len(not_done))
                    for future in not_done:
                        future.cancel()
                        failed.append(futures[future])
                    _log.warning(
                        "sweep stalled: no chunk completed within %.2fs; "
                        "failing %d outstanding chunks",
                        policy.chunk_timeout_s or 0.0,
                        len(not_done),
                    )
                    break
                for future in done:
                    ordinal, start, stop = futures[future]
                    try:
                        _, evaluations, worker_metrics = validate_chunk_result(
                            future.result(), start, stop - start
                        )
                    except KeyboardInterrupt:
                        raise
                    except Exception as error:
                        inc("chunk_failures")
                        _log.warning(
                            "chunk %d [%d:%d) failed on attempt %d: %s: %s",
                            ordinal,
                            start,
                            stop,
                            attempt,
                            type(error).__name__,
                            error,
                        )
                        failed.append((ordinal, start, stop))
                        continue
                    commit(start, evaluations, worker_metrics)
                    committed.add(ordinal)
        except BrokenExecutor:
            # A worker died while chunks were still being submitted:
            # pool.submit itself raises on a broken pool, before any
            # future exists to carry the error.  Everything this round
            # that was neither committed nor already marked failed is
            # carried into the next retry round.
            unresolved = {c[0] for c in failed} | committed
            broken = [chunk for chunk in pending if chunk[0] not in unresolved]
            inc("chunk_failures", len(broken))
            failed.extend(broken)
            _log.warning(
                "process pool broke during submission on attempt %d; "
                "failing %d unresolved chunks",
                attempt,
                len(broken),
            )
        finally:
            # wait=False: a deliberately delayed/stuck worker must not
            # block the retry rounds; cancel_futures drops queued work.
            pool.shutdown(wait=False, cancel_futures=True)
        pending = failed
        attempt += 1

    # Graceful degradation: whatever survived every retry round is
    # re-evaluated serially in-process — a sweep always completes.
    for ordinal, start, stop in pending:
        inc("serial_fallbacks")
        _log.warning(
            "chunk %d [%d:%d) exhausted %d retries; degrading to serial "
            "in-process evaluation",
            ordinal,
            start,
            stop,
            policy.max_retries,
        )
        if batched:
            evaluations = list(evaluate_block(context, designs[start:stop], strategy))
        else:
            evaluations = [
                evaluate_design(context, designs[index], strategy)
                for index in range(start, stop)
            ]
        commit(start, evaluations, None)


def optimize(
    context: SiteContext,
    space: DesignSpace,
    strategy: Strategy,
    progress: Optional[ProgressCallback] = None,
    workers: int = 1,
    max_retries: int = 2,
    chunk_timeout: Optional[float] = None,
    backoff_s: float = 0.1,
    checkpoint: Optional[PathLike] = None,
    resume: bool = False,
    faults: Optional[FaultPlan] = None,
    shm: bool = True,
    events: Optional[SweepEvents] = None,
    batch_size: Optional[int] = None,
) -> OptimizationResult:
    """Exhaustively evaluate ``space`` under ``strategy`` for one site.

    ``progress``, when given, is called with ``(done, total,
    strategy_name)`` — ``done`` is a completed *count*, not a grid
    position; see :class:`repro.obs.ProgressCallback` for the exact
    semantics (serial sweeps report per point, parallel sweeps per
    completed chunk, resumed sweeps start at the checkpointed count).

    ``events``, when given, receives the sweep's lifecycle on a
    :class:`repro.obs.SweepEvents` bus: ``sweep_started``, one
    ``chunk_completed`` per committed chunk (chunks restored from a
    resumed journal are mirrored with ``resumed: true`` before any live
    chunk), ``chunk_retried`` per re-submitted parallel chunk,
    ``frontier_updated`` whenever a committed chunk lowers the running
    best total carbon, and ``sweep_finished`` with the optimum.  Grid
    chunking is a pure function of the grid size, so the
    ``chunk_completed`` count is identical serial vs. parallel; the bus
    is never closed here (callers may run several sweeps over one bus).

    Resilience (see :mod:`repro.resilience`):

    * ``workers > 1`` fans grid chunks across a process pool; a failed or
      stalled chunk is retried up to ``max_retries`` times with
      exponential backoff (``backoff_s`` base, doubling per round) and
      finally re-evaluated serially in-process, so the sweep completes
      with evaluations bitwise-identical to a serial run regardless of
      worker crashes.  ``chunk_timeout`` (seconds) is the stall detector:
      if *no* chunk completes within it, outstanding chunks are failed
      and retried.
    * ``checkpoint`` names a journal file appended to as chunks finish;
      ``resume=True`` loads it, validates its fingerprint against this
      exact sweep, and skips already-journaled grid indices.  An
      interrupt (Ctrl-C) flushes the journal and raises
      :class:`repro.resilience.SweepInterrupted` with the partial
      progress.
    * ``faults`` injects deterministic worker kills / delays / corrupt
      payloads (tests and CI only).
    * ``shm`` (default on) ships the context to workers through the
      zero-copy shared-memory trace plane (:mod:`repro.core.shm`): the
      traces are packed into one segment and each pool initializer gets a
      <1 KB :class:`~repro.core.shm.SiteContextHandle` instead of the
      ~850 KB context pickle.  The segment is created once per sweep,
      re-attached by every retry-round pool, and unlinked on every exit
      path (completion, exception, interrupt).  ``shm=False`` — or a
      platform where segment creation fails, which logs a warning —
      falls back to pickling the full context.  Results are bitwise
      identical either way.
    * ``batch_size`` routes every path — serial, parallel workers, the
      post-retry serial fallback, and resumed sweeps — through
      :func:`repro.core.evaluate.evaluate_block`, which tensorizes each
      chunk's design axis into one ``(design, hour)`` kernel call
      (:mod:`repro.kernels.batch`).  Chunks are widened to at least
      ``batch_size`` grid points (still a pure function of the grid and
      this argument, never of ``workers``), and every evaluation stays
      bitwise-identical to the default per-design loop.  ``None`` (the
      default) keeps the legacy per-design path and chunking exactly.

    Raises
    ------
    ValueError
        If ``workers < 1``, ``batch_size < 1``, ``resume`` is requested
        without a ``checkpoint``, or the constrained space is empty.
    repro.resilience.CheckpointError
        If the checkpoint file is damaged.
    repro.resilience.CheckpointMismatchError
        If the checkpoint belongs to a different site/seed/space/strategy.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint path")
    policy = RetryPolicy(
        max_retries=max_retries,
        backoff_base_s=backoff_s,
        chunk_timeout_s=chunk_timeout,
    )
    total = space.size(strategy)
    designs = list(space.points(strategy))
    results: List[Optional[DesignEvaluation]] = [None] * total

    if events is not None:
        events.emit(
            "sweep_started",
            site=context.site_state,
            strategy=strategy.value,
            total=total,
            workers=workers,
        )

    journal: Optional[CheckpointJournal] = None
    skipped = 0
    if checkpoint is not None:
        fingerprint = sweep_fingerprint(context, space, strategy)
        if resume:
            restored = load_resumable_chunks(
                checkpoint,
                fingerprint,
                strategy,
                total,
                events=events,
                site=context.site_state,
            )
            for start, evaluations in restored.items():
                results[start : start + len(evaluations)] = evaluations
            skipped = sum(len(e) for e in restored.values())
            if restored:
                inc("checkpoint_chunks_skipped", len(restored))
                inc("checkpoint_designs_skipped", skipped)
        journal = CheckpointJournal(
            checkpoint,
            JournalHeader(
                version=JOURNAL_VERSION,
                fingerprint=fingerprint,
                strategy=strategy.name,
                total=total,
            ),
            truncate=not resume,
        )

    # Worker-independent chunking: boundaries depend only on the grid (and
    # an explicit batch_size), so serial and parallel sweeps journal and
    # narrate identical chunks.  Batched sweeps widen chunks to at least
    # batch_size rows — a (design, hour) kernel call amortizes its hour
    # loop over the whole chunk, so bigger blocks are faster until memory
    # bandwidth pushes back.
    chunk_size = sweep_chunk_size(total, batch_size)
    chunks = _chunk_missing_indices([r is not None for r in results], chunk_size)

    use_pool = workers > 1 and len(chunks) > 1
    shared: Optional[SharedSiteContext] = None
    payload: _ContextPayload = context
    if use_pool:
        if shm:
            try:
                shared = share_context(context)
                payload = shared.handle
            except SharedContextError as error:
                _log.warning(
                    "shared-memory trace plane unavailable (%s); "
                    "falling back to pickling the context per worker",
                    error,
                )
        set_gauge("context_pickle_bytes", handle_pickle_bytes(payload))

    _log.info(
        "sweep start: site=%s strategy=%s grid_points=%d workers=%d "
        "pending_chunks=%d resumed_evaluations=%d",
        context.site_state,
        strategy.value,
        total,
        workers,
        len(chunks),
        skipped,
    )

    done = skipped
    if progress is not None and skipped:
        progress(done, total, strategy.value)

    # Running best across everything committed so far (seeded with any
    # resumed evaluations) — what frontier_updated events compare against.
    best_tons = min(
        (r.total_tons for r in results if r is not None), default=math.inf
    )

    def write_back(
        start: int,
        evaluations: List[DesignEvaluation],
        telemetry: Optional[Dict[str, Any]],
    ) -> None:
        """Commit one completed chunk: results, telemetry, journal, events.

        ``telemetry`` is a worker's metrics snapshot (counters and
        histogram buckets fold into the parent registry) optionally
        carrying the worker's exported ``"spans"``, which are ingested
        into the parent tracer under the worker's ``"pid"`` lane.
        """
        nonlocal best_tons
        results[start : start + len(evaluations)] = evaluations
        if telemetry is not None:
            merge_snapshot(telemetry)
            worker_spans = telemetry.get("spans")
            if worker_spans:
                get_tracer().ingest_spans(
                    worker_spans, pid=telemetry.get("pid", 0)
                )
        if journal is not None:
            journal.append_chunk(start, evaluations)
            inc("checkpoint_chunks_written")
        if events is not None:
            events.emit(
                "chunk_completed",
                site=context.site_state,
                strategy=strategy.value,
                start=start,
                count=len(evaluations),
            )
            chunk_best = min(evaluations, key=lambda e: e.total_tons)
            if chunk_best.total_tons < best_tons:
                best_tons = chunk_best.total_tons
                events.emit(
                    "frontier_updated",
                    site=context.site_state,
                    strategy=strategy.value,
                    total_tons=chunk_best.total_tons,
                    coverage=chunk_best.coverage,
                    design=chunk_best.design.describe(),
                )

    def commit_parallel(
        start: int,
        evaluations: List[DesignEvaluation],
        worker_metrics: Optional[Dict[str, Any]],
    ) -> None:
        nonlocal done
        write_back(start, evaluations, worker_metrics)
        done += len(evaluations)
        if progress is not None:
            progress(done, total, strategy.value)

    def on_serial_point() -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, total, strategy.value)

    try:
        with span(
            "optimize",
            strategy=strategy.value,
            site=context.site_state,
            grid_points=total,
            workers=workers,
        ):
            if not use_pool:
                _sweep_serial(
                    context,
                    designs,
                    strategy,
                    chunks,
                    write_back,
                    on_serial_point,
                    batched=batch_size is not None,
                )
            else:
                _sweep_parallel(
                    context,
                    payload,
                    designs,
                    strategy,
                    chunks,
                    workers,
                    policy,
                    faults,
                    commit_parallel,
                    events=events,
                    site=context.site_state,
                    strategy_label=strategy.value,
                    batched=batch_size is not None,
                )
    except KeyboardInterrupt:
        if journal is not None:
            journal.close()
            raise SweepInterrupted(
                checkpoint=journal.path,
                done=done,
                total=total,
                strategy=strategy.value,
            ) from None
        raise
    finally:
        # Deterministic trace-plane teardown: completion, exceptions, and
        # SweepInterrupted all unlink the shared segment here.
        if shared is not None:
            shared.unlink()
        if journal is not None:
            journal.close()

    if not all(evaluation is not None for evaluation in results):
        raise AssertionError("sweep left unevaluated grid points")  # pragma: no cover
    evaluations = results
    if not evaluations:
        raise ValueError("design space produced no points")
    best = min(evaluations, key=lambda e: e.total_tons)  # type: ignore[union-attr]
    inc("sweeps_completed")
    set_gauge("sweep_grid_points", total)
    if events is not None:
        events.emit(
            "sweep_finished",
            site=context.site_state,
            strategy=strategy.value,
            total=total,
            best_total_tons=best.total_tons,
            best_coverage=best.coverage,
        )
    _log.info(
        "sweep done: site=%s strategy=%s best_total_tons=%.1f coverage=%.3f",
        context.site_state,
        strategy.value,
        best.total_tons,
        best.coverage,
    )
    return OptimizationResult(
        strategy=strategy, best=best, evaluations=tuple(evaluations)  # type: ignore[arg-type]
    )


def optimize_all_strategies(
    context: SiteContext,
    space: Optional[DesignSpace] = None,
    progress: Optional[ProgressCallback] = None,
    workers: int = 1,
    max_retries: int = 2,
    chunk_timeout: Optional[float] = None,
    backoff_s: float = 0.1,
    checkpoint: Optional[PathLike] = None,
    resume: bool = False,
    faults: Optional[FaultPlan] = None,
    shm: bool = True,
    events: Optional[SweepEvents] = None,
    batch_size: Optional[int] = None,
) -> Dict[Strategy, OptimizationResult]:
    """Run the exhaustive sweep for all four strategies of Fig. 15.

    When ``space`` is omitted a :func:`default_design_space` is built from
    the site's size and the local grid's available resources.  All sweep
    keyword arguments are forwarded to each per-strategy :func:`optimize`
    call; ``checkpoint`` is treated as a *base* path — each strategy
    journals to ``<checkpoint>.<strategy_name>`` (lowercase enum name,
    e.g. ``sweep.ckpt.renewables_battery``) so the four sweeps never share
    a journal.
    """
    if space is None:
        space = default_design_space(
            avg_power_mw=context.demand.avg_power_mw,
            supports_solar=context.supports_solar,
            supports_wind=context.supports_wind,
        )
    return {
        strategy: optimize(
            context,
            space,
            strategy,
            progress=progress,
            workers=workers,
            max_retries=max_retries,
            chunk_timeout=chunk_timeout,
            backoff_s=backoff_s,
            checkpoint=strategy_checkpoint_path(checkpoint, strategy),
            resume=resume,
            faults=faults,
            shm=shm,
            events=events,
            batch_size=batch_size,
        )
        for strategy in Strategy
    }


def optimize_fleet(
    sites: Sequence[Tuple[SiteContext, DesignSpace]],
    strategy: Strategy,
    *,
    batch_size: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[OptimizationResult]:
    """Sweep several sites under one strategy through merged kernel blocks.

    A multi-site study (Fig. 14's three-site column, Fig. 15's thirteen
    regions) runs the same grid at every site.  Per-site sweeps pay the
    batched kernels' near-constant hour-loop dispatch cost once per site;
    this entry point folds the site axis into the design axis instead —
    :func:`repro.core.evaluate.evaluate_block_sites` stacks each site's
    demand trace into a ``(design, hour)`` block row-for-row with its
    supply — so the whole fleet pays that cost once.  Results are
    bitwise-identical to ``[optimize(context, space, strategy,
    batch_size=...) for context, space in sites]``: the kernels are pure
    row-wise lockstep, and strategies (or blocks) that cannot merge fall
    back to per-site evaluation inside ``evaluate_block_sites``.

    ``batch_size`` caps the rows merged into one kernel call (``None``,
    the default, merges the entire fleet — at thirteen sites × a few
    hundred designs the block is tens of MB, far below memory pressure,
    and fewer calls is strictly faster).  ``progress`` receives ``(done,
    total, strategy_name)`` with ``total`` counting rows fleet-wide.

    This is a serial, in-process path: it composes with ``workers=1``
    sweeps only.  Multi-process fleets should keep per-site
    :func:`optimize` calls (the trace plane ships one site per worker).
    """
    sites = [(context, space) for context, space in sites]
    if not sites:
        return []
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    per_site_designs = [
        list(space.points(strategy)) for _, space in sites
    ]
    if any(not designs for designs in per_site_designs):
        raise ValueError("design space produced no points")
    totals = [len(designs) for designs in per_site_designs]
    total = sum(totals)
    rows = [
        (site_index, design)
        for site_index, designs in enumerate(per_site_designs)
        for design in designs
    ]
    chunk_size = total if batch_size is None else batch_size

    collected: List[List[DesignEvaluation]] = [[] for _ in sites]
    done = 0
    with span(
        "optimize_fleet",
        strategy=strategy.value,
        n_sites=len(sites),
        grid_points=total,
    ):
        for start in range(0, total, chunk_size):
            chunk = rows[start : start + chunk_size]
            segments: List[Tuple[SiteContext, List[DesignPoint]]] = []
            segment_sites: List[int] = []
            for site_index, design in chunk:
                if not segment_sites or segment_sites[-1] != site_index:
                    segments.append((sites[site_index][0], []))
                    segment_sites.append(site_index)
                segments[-1][1].append(design)
            evaluated = evaluate_block_sites(segments, strategy)
            for site_index, evaluations in zip(segment_sites, evaluated):
                collected[site_index].extend(evaluations)
                done += len(evaluations)
            if progress is not None:
                progress(done, total, strategy.value)

    results: List[OptimizationResult] = []
    for (context, _), evaluations, site_total in zip(sites, collected, totals):
        if len(evaluations) != site_total:  # pragma: no cover
            raise AssertionError("fleet sweep left unevaluated grid points")
        best = min(evaluations, key=lambda e: e.total_tons)
        inc("sweeps_completed")
        set_gauge("sweep_grid_points", site_total)
        _log.info(
            "fleet sweep done: site=%s strategy=%s best_total_tons=%.1f "
            "coverage=%.3f",
            context.site_state,
            strategy.value,
            best.total_tons,
            best.coverage,
        )
        results.append(
            OptimizationResult(
                strategy=strategy, best=best, evaluations=tuple(evaluations)
            )
        )
    return results


def strategy_checkpoint_path(
    checkpoint: Optional[PathLike], strategy: Strategy
) -> Optional[str]:
    """Per-strategy journal path derived from a base checkpoint path."""
    if checkpoint is None:
        return None
    return f"{checkpoint}.{strategy.name.lower()}"


