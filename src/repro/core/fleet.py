"""Fleet sweep scheduler: all sites, one worker pool, per-site fault domains.

The paper's headline results (Figs. 9, 14, 15) rank all thirteen grids
against each other, but per-site :func:`repro.core.optimizer.optimize`
calls sweep them strictly one at a time — one wedged or faulty site
stalls the whole ranking, and an interrupt throws away every completed
site.  :func:`sweep_fleet` instead schedules the entire fleet over **one
shared worker pool**:

* **One shm segment per site** — every site's traces are packed into its
  own shared-memory segment (:mod:`repro.core.shm`); workers receive the
  full map of tiny handles at pool init and attach a site's segment
  lazily, the first time they evaluate one of its chunks.
* **Site-interleaved dispatch** — per-site chunk queues are drained
  round-robin, so a site with slow chunks cannot starve the others and
  partial results accrue across the whole fleet at once.
* **Per-site fault domains** — a site whose segment cannot be attached,
  whose chunks exhaust their retries, or whose payloads keep failing
  validation is *quarantined*: its remaining chunks degrade to serial
  in-parent evaluation (or the site is marked failed, with
  ``quarantine="fail"``) while every other site keeps sweeping.  Chunk
  evaluation is deterministic, so a quarantined-but-completed site is
  still bitwise-identical to a fault-free serial sweep.
* **Deadline budgets** — ``deadline_s`` bounds the fleet's wall clock;
  when it trips, unfinished sites are closed out as
  ``deadline_exceeded`` with their partial frontiers instead of hanging
  the caller.  Stall detection is *adaptive*: an EWMA over observed
  chunk durations (:class:`repro.resilience.AdaptiveChunkTimeout`)
  replaces the one-size fixed ``chunk_timeout``.
* **Streaming partial results** — the sweep narrates itself onto a
  :class:`repro.obs.SweepEvents` bus (``sweep_started`` /
  ``chunk_completed`` / ``frontier_updated`` / ``site_quarantined`` /
  ``sweep_degraded`` / ``deadline_exceeded`` / ``sweep_finished``), so a
  subscriber — or a ``bus.stream()`` iterator on another thread — sees
  every frontier improvement live; ``repro rank --stream`` prints them.

Chunk boundaries come from the same pure
:func:`~repro.core.optimizer.sweep_chunk_size` function :func:`optimize`
uses, and per-site journals are written with the same fingerprints — a
fleet journal resumes under :func:`optimize` and vice versa.

Retry semantics differ from :func:`optimize` deliberately: a failed
chunk is requeued at the tail of its site's queue instead of waiting out
an exponential-backoff round, because the shared pool keeps serving the
other sites in the meantime — the interleaving itself provides the
spacing that backoff buys a single-site sweep.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from enum import Enum, unique
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)

from ..obs import (
    ProgressCallback,
    SweepEvents,
    export_spans,
    get_logger,
    get_tracer,
    inc,
    merge_snapshot,
    metrics_enabled,
    metrics_snapshot,
    reset_metrics,
    reset_tracing,
    set_gauge,
    span,
    tracing_enabled,
)
from ..resilience import (
    CheckpointJournal,
    FaultAction,
    FaultKind,
    FleetFaultPlan,
    JournalHeader,
    JOURNAL_VERSION,
    AdaptiveChunkTimeout,
    corrupt_payload,
    execute_pre_fault,
    load_resumable_chunks,
    sweep_fingerprint,
    validate_chunk_result,
)
from ..resilience.checkpoint import PathLike
from ..resilience.validate import ChunkValidationError
from .design import DesignPoint, DesignSpace, Strategy
from .evaluate import DesignEvaluation, SiteContext, evaluate_block, evaluate_design
from .optimizer import (
    OptimizationResult,
    _chunk_missing_indices,
    _ContextPayload,
    _mp_context,
    sweep_chunk_size,
)
from .pareto import pareto_frontier
from .shm import (
    SharedContextError,
    SharedSiteContext,
    SiteContextHandle,
    attach_context,
    share_context,
)

_log = get_logger("core.fleet")

#: One fleet site: (site key, context, design space).  Keys must be unique;
#: the CLI uses state codes.
FleetSite = Tuple[str, SiteContext, DesignSpace]

#: How the scheduler's wait loop ticks, seconds: short enough that deadline
#: and stall checks stay responsive, long enough not to spin.
_TICK_S = 0.05

#: In-flight chunks per pool slot; 2 keeps every worker fed without
#: queueing so much that one site's burst delays the others' turns.
_INFLIGHT_PER_WORKER = 2


@unique
class SiteStatus(Enum):
    """Terminal status of one site within a fleet sweep."""

    COMPLETE = "complete"
    DEGRADED = "degraded"
    FAILED = "failed"
    DEADLINE_EXCEEDED = "deadline_exceeded"


@dataclass(frozen=True)
class SiteSweep:
    """One site's outcome inside a :class:`FleetResult`.

    ``evaluations`` holds every *committed* evaluation in grid order —
    the full grid for ``complete``/``degraded`` sites, a partial prefix
    pattern for ``failed``/``deadline_exceeded`` ones.  ``result`` is the
    site's :class:`~repro.core.optimizer.OptimizationResult` when the
    sweep finished (bitwise-identical to a standalone fault-free serial
    :func:`~repro.core.optimizer.optimize`), else ``None``.
    """

    site: str
    status: SiteStatus
    total: int
    completed: int
    evaluations: Tuple[DesignEvaluation, ...]
    result: Optional[OptimizationResult]
    quarantined: bool = False
    error: Optional[str] = None

    @property
    def best(self) -> Optional[DesignEvaluation]:
        """Lowest-carbon evaluation committed so far (partial or final)."""
        if not self.evaluations:
            return None
        return min(self.evaluations, key=lambda e: e.total_tons)

    def frontier(self) -> Tuple[DesignEvaluation, ...]:
        """Pareto frontier of the committed evaluations (partial or final)."""
        return pareto_frontier(self.evaluations)


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one fleet sweep: per-site status alongside partial results.

    Unlike a plain list of :class:`OptimizationResult`, a fleet sweep can
    *partially* succeed — that is the point.  Sites appear in input order.
    """

    strategy: Strategy
    sites: Tuple[SiteSweep, ...]
    deadline_s: Optional[float]
    elapsed_s: float

    def site(self, key: str) -> SiteSweep:
        """Look up one site's sweep by key."""
        for sweep in self.sites:
            if sweep.site == key:
                return sweep
        raise KeyError(f"no site {key!r} in this fleet result")

    def statuses(self) -> Dict[str, str]:
        """Site key → status value, in input order."""
        return {sweep.site: sweep.status.value for sweep in self.sites}

    @property
    def complete(self) -> bool:
        """Whether every site finished clean (no degradation, no drops)."""
        return all(sweep.status is SiteStatus.COMPLETE for sweep in self.sites)

    @property
    def finished(self) -> Tuple[SiteSweep, ...]:
        """Sites that produced a full :class:`OptimizationResult`."""
        return tuple(sweep for sweep in self.sites if sweep.result is not None)


class FleetInterrupted(KeyboardInterrupt):
    """A fleet sweep was interrupted; completed sites survive.

    Subclasses :class:`KeyboardInterrupt` (like
    :class:`~repro.resilience.SweepInterrupted`) so generic ``except
    Exception`` handlers cannot swallow it.  ``completed`` carries every
    site that finished before the interrupt — the CLI prints the partial
    rank table from it — and per-site journals (when checkpointing) hold
    every committed chunk for ``--resume``.
    """

    def __init__(
        self,
        completed: Tuple[SiteSweep, ...],
        pending: Tuple[str, ...],
        strategy: str,
        checkpoint: Optional[str] = None,
    ) -> None:
        super().__init__()
        self.completed = completed
        self.pending = pending
        self.strategy = strategy
        self.checkpoint = checkpoint

    def __str__(self) -> str:
        done = ", ".join(s.site for s in self.completed) or "none"
        return (
            f"fleet sweep interrupted: completed sites [{done}], "
            f"{len(self.pending)} pending ({self.strategy})"
        )


def fleet_checkpoint_path(checkpoint: Optional[PathLike], site: str) -> Optional[str]:
    """Per-site journal path derived from a base checkpoint path.

    Matches the suffix scheme ``repro rank --checkpoint`` has always used
    (``<base>.<site lowercase>``), so fleet journals and per-site
    :func:`~repro.core.optimizer.optimize` journals are interchangeable.
    """
    if checkpoint is None:
        return None
    return f"{checkpoint}.{site.lower()}"


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Site key → payload (shm handle or pickled context) for every fleet site,
#: shipped once via the pool initializer.
_fleet_payloads: Dict[str, _ContextPayload] = {}

#: Site key → rebuilt context, resolved lazily per worker on first chunk.
_fleet_contexts: Dict[str, SiteContext] = {}

_fleet_collect_metrics = False
_fleet_collect_spans = False


def _init_fleet_worker(
    payloads: Dict[str, _ContextPayload],
    collect_metrics: bool,
    collect_spans: bool,
) -> None:
    global _fleet_payloads, _fleet_collect_metrics, _fleet_collect_spans
    _fleet_payloads = payloads
    # A fork-started worker inherits the parent's module state; contexts
    # resolved in a previous pool's worker must not leak into this one.
    _fleet_contexts.clear()
    _fleet_collect_metrics = collect_metrics
    _fleet_collect_spans = collect_spans
    if collect_metrics:
        from ..obs import enable_metrics

        enable_metrics()
    if collect_spans:
        from ..obs import enable_tracing

        enable_tracing()


def _fleet_context(site: str) -> SiteContext:
    """This worker's context for ``site``, attaching its segment on first use."""
    context = _fleet_contexts.get(site)
    if context is None:
        payload = _fleet_payloads[site]
        if isinstance(payload, SiteContextHandle):
            context = attach_context(payload)
        else:
            context = payload
        _fleet_contexts[site] = context
    return context


def _evaluate_fleet_chunk(
    site: str,
    start: int,
    designs: Sequence[DesignPoint],
    strategy: Strategy,
    fault: Optional[FaultAction] = None,
    batched: bool = False,
) -> Tuple[str, int, List[DesignEvaluation], Optional[Dict[str, Any]]]:
    """Evaluate one site's grid slice in a shared-pool worker.

    The fleet counterpart of ``optimizer._evaluate_chunk``: same
    telemetry contract (disjoint per-chunk metrics snapshots, optional
    span export under ``"spans"``/``"pid"``), but the payload leads with
    the site key and the context is resolved lazily from the fleet
    payload map.  Metrics are reset *before* the lazy attach so a first
    attach's ``context_attach_count`` lands in this chunk's snapshot.
    """
    import os as _os

    if _fleet_collect_metrics:
        reset_metrics()
    if _fleet_collect_spans:
        reset_tracing(drop_open=True)
    if fault is not None and fault.kind is FaultKind.SHM:
        raise SharedContextError(
            f"injected shm fault: segment for site {site!r} is unattachable"
        )
    execute_pre_fault(fault)
    context = _fleet_context(site)
    evaluations: List[Any]
    with span("evaluate_chunk", site=site, start=start, n_designs=len(designs)):
        if batched:
            evaluations = list(evaluate_block(context, designs, strategy))
        else:
            evaluations = [
                evaluate_design(context, design, strategy) for design in designs
            ]
    telemetry: Optional[Dict[str, Any]] = (
        metrics_snapshot() if _fleet_collect_metrics else None
    )
    if _fleet_collect_spans:
        telemetry = dict(telemetry) if telemetry is not None else {}
        telemetry["spans"] = export_spans()
        telemetry["pid"] = _os.getpid()
    if fault is not None and fault.kind is FaultKind.CORRUPT:
        evaluations = corrupt_payload(evaluations)
    return site, start, evaluations, telemetry


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

_Chunk = Tuple[int, int, int]


class _SiteState:
    """Mutable per-site scheduling state (parent-side only)."""

    __slots__ = (
        "key",
        "context",
        "space",
        "designs",
        "total",
        "results",
        "journal",
        "queue",
        "chunks",
        "n_chunks",
        "attempts",
        "committed",
        "best_tons",
        "status",
        "quarantined",
        "serial_chunks",
        "error",
        "shared",
        "payload",
    )

    def __init__(
        self, key: str, context: SiteContext, space: DesignSpace, strategy: Strategy
    ) -> None:
        self.key = key
        self.context = context
        self.space = space
        self.designs: List[DesignPoint] = list(space.points(strategy))
        self.total = len(self.designs)
        self.results: List[Optional[DesignEvaluation]] = [None] * self.total
        self.journal: Optional[CheckpointJournal] = None
        self.queue: Deque[_Chunk] = deque()
        self.chunks: List[_Chunk] = []
        self.n_chunks = 0
        self.attempts: Dict[int, int] = {}
        self.committed: Set[int] = set()
        self.best_tons = float("inf")
        self.status: Optional[SiteStatus] = None
        self.quarantined = False
        self.serial_chunks = 0
        self.error: Optional[str] = None
        self.shared: Optional[SharedSiteContext] = None
        self.payload: _ContextPayload = context

    @property
    def active(self) -> bool:
        return self.status is None

    @property
    def done_points(self) -> int:
        return sum(1 for r in self.results if r is not None)

    def remaining_chunks(self) -> List[_Chunk]:
        """Chunks not yet committed, in grid order.

        Filters the *initial* chunk list rather than re-chunking the
        missing indices — re-chunking would renumber the ordinals the
        committed set and fault plans address.
        """
        return [chunk for chunk in self.chunks if chunk[0] not in self.committed]

    def partial_evaluations(self) -> Tuple[DesignEvaluation, ...]:
        return tuple(r for r in self.results if r is not None)


@dataclass(frozen=True)
class _Flight:
    """One chunk in flight on the shared pool."""

    site: str
    ordinal: int
    start: int
    stop: int
    submitted_s: float  # time.monotonic() at submission


def sweep_fleet(
    sites: Sequence[FleetSite],
    strategy: Strategy,
    *,
    workers: int = 1,
    deadline_s: Optional[float] = None,
    max_retries: int = 2,
    chunk_timeout: Optional[float] = None,
    timeout_multiplier: float = 8.0,
    timeout_floor_s: float = 0.25,
    checkpoint: Optional[PathLike] = None,
    resume: bool = False,
    faults: Optional[FleetFaultPlan] = None,
    quarantine: str = "serial",
    shm: bool = True,
    events: Optional[SweepEvents] = None,
    batch_size: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
) -> FleetResult:
    """Sweep every site under one strategy over one shared worker pool.

    Parameters
    ----------
    sites:
        ``(key, context, space)`` triples; keys must be unique.
    workers:
        Pool width shared by the whole fleet.  ``1`` runs the fleet
        serially in-process (still interleaved, deadline-aware, and
        streaming; fault injection needs ``workers > 1``).
    deadline_s:
        Global wall-clock budget.  When it trips, pending chunks are
        dropped (``chunks_deadline_dropped`` counter), a
        ``deadline_exceeded`` event fires, and every unfinished site is
        reported as :attr:`SiteStatus.DEADLINE_EXCEEDED` with its partial
        evaluations — the sweep returns instead of hanging.
    max_retries:
        Failed-chunk retries before the chunk's site is quarantined.
    chunk_timeout:
        Seed for the adaptive stall detector: used as the stall budget
        until real chunk durations exist, after which
        ``max(timeout_floor_s, timeout_multiplier * EWMA(duration))``
        takes over.  ``None`` disables stall detection until the first
        chunk completes.
    checkpoint / resume:
        Base journal path; each site journals to ``<base>.<site lower>``
        (the scheme ``repro rank`` has always used).  Journals are
        fingerprint-compatible with per-site :func:`optimize` runs.
    faults:
        Site-scoped fault injection (tests/CI); fires in pool workers
        only.
    quarantine:
        ``"serial"`` (default) drains a quarantined site's remaining
        chunks serially in-parent after the pooled phase — the site
        finishes ``degraded`` but bitwise-correct; ``"fail"`` closes the
        site out immediately as ``failed`` with partial results.
    events:
        A :class:`~repro.obs.SweepEvents` bus narrating the sweep live.

    Raises
    ------
    ValueError
        On empty/duplicate sites, bad arguments, or an empty design
        space.
    FleetInterrupted
        On Ctrl-C: journals are flushed and completed sites ride along.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if deadline_s is not None and deadline_s <= 0:
        raise ValueError(f"deadline_s must be positive or None, got {deadline_s}")
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if quarantine not in ("serial", "fail"):
        raise ValueError(
            f"quarantine must be 'serial' or 'fail', got {quarantine!r}"
        )
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint path")
    if not sites:
        raise ValueError("sweep_fleet needs at least one site")
    keys = [key for key, _, _ in sites]
    if len(set(keys)) != len(keys):
        raise ValueError(f"duplicate site keys in fleet: {keys}")

    started_s = time.monotonic()
    deadline_at = None if deadline_s is None else started_s + deadline_s
    batched = batch_size is not None
    timeout = AdaptiveChunkTimeout(
        initial_s=chunk_timeout,
        multiplier=timeout_multiplier,
        floor_s=timeout_floor_s,
    )

    states: List[_SiteState] = [
        _SiteState(key, context, space, strategy) for key, context, space in sites
    ]
    by_key = {state.key: state for state in states}
    for state in states:
        if state.total == 0:
            raise ValueError(
                f"design space for site {state.key!r} produced no points"
            )
    fleet_total = sum(state.total for state in states)
    done_points = 0

    def _remaining_s() -> Optional[float]:
        if deadline_at is None:
            return None
        return max(0.0, deadline_at - time.monotonic())

    def _deadline_hit() -> bool:
        return deadline_at is not None and time.monotonic() >= deadline_at

    def _emit(kind: str, **payload: Any) -> None:
        if events is not None:
            events.emit(kind, **payload)

    def _finalize(state: _SiteState, status: SiteStatus) -> None:
        """Close a site out; emits its terminal event exactly once."""
        if state.status is not None:
            return
        state.status = status
        if status in (SiteStatus.COMPLETE, SiteStatus.DEGRADED):
            evaluations = state.results
            assert all(e is not None for e in evaluations)
            best = min(evaluations, key=lambda e: e.total_tons)  # type: ignore[union-attr]
            inc("sweeps_completed")
            set_gauge("sweep_grid_points", state.total)
            if status is SiteStatus.DEGRADED:
                events_payload = dict(
                    site=state.key,
                    strategy=strategy.value,
                    serial_chunks=state.serial_chunks,
                    reason=state.error or "quarantined",
                )
                _emit("sweep_degraded", **events_payload)
            _emit(
                "sweep_finished",
                site=state.key,
                strategy=strategy.value,
                total=state.total,
                best_total_tons=best.total_tons,
                best_coverage=best.coverage,
                status=status.value,
            )
            _log.info(
                "fleet site done: site=%s status=%s best_total_tons=%.1f",
                state.key,
                status.value,
                best.total_tons,
            )
        else:
            _log.warning(
                "fleet site closed: site=%s status=%s committed=%d/%d (%s)",
                state.key,
                status.value,
                state.done_points,
                state.total,
                state.error or "",
            )

    def _site_sweep(state: _SiteState) -> SiteSweep:
        status = state.status
        assert status is not None
        result: Optional[OptimizationResult] = None
        if status in (SiteStatus.COMPLETE, SiteStatus.DEGRADED):
            evaluations = tuple(state.results)
            best = min(evaluations, key=lambda e: e.total_tons)  # type: ignore[union-attr]
            result = OptimizationResult(
                strategy=strategy, best=best, evaluations=evaluations  # type: ignore[arg-type]
            )
        return SiteSweep(
            site=state.key,
            status=status,
            total=state.total,
            completed=state.done_points,
            evaluations=state.partial_evaluations(),
            result=result,
            quarantined=state.quarantined,
            error=state.error,
        )

    def _commit(
        state: _SiteState,
        ordinal: int,
        start: int,
        evaluations: List[DesignEvaluation],
        telemetry: Optional[Dict[str, Any]],
        serial: bool = False,
    ) -> None:
        """Write one completed chunk back: results, journal, events, progress.

        Idempotent per ordinal — a stalled chunk that lands after its
        retry already committed is dropped, so the journal never holds a
        chunk twice.
        """
        nonlocal done_points
        if ordinal in state.committed or state.status is not None:
            return
        state.committed.add(ordinal)
        if serial:
            state.serial_chunks += 1
        state.results[start : start + len(evaluations)] = evaluations
        if telemetry is not None:
            merge_snapshot(telemetry)
            worker_spans = telemetry.get("spans")
            if worker_spans:
                get_tracer().ingest_spans(worker_spans, pid=telemetry.get("pid", 0))
        if state.journal is not None:
            state.journal.append_chunk(start, evaluations)
            inc("checkpoint_chunks_written")
        done_points += len(evaluations)
        _emit(
            "chunk_completed",
            site=state.key,
            strategy=strategy.value,
            start=start,
            count=len(evaluations),
        )
        chunk_best = min(evaluations, key=lambda e: e.total_tons)
        if chunk_best.total_tons < state.best_tons:
            state.best_tons = chunk_best.total_tons
            _emit(
                "frontier_updated",
                site=state.key,
                strategy=strategy.value,
                total_tons=chunk_best.total_tons,
                coverage=chunk_best.coverage,
                design=chunk_best.design.describe(),
            )
        if progress is not None:
            progress(done_points, fleet_total, strategy.value)
        if len(state.committed) == state.n_chunks:
            _finalize(
                state,
                SiteStatus.DEGRADED
                if (state.quarantined or state.serial_chunks)
                else SiteStatus.COMPLETE,
            )

    def _quarantine(state: _SiteState, reason: str) -> None:
        """Isolate one site's fault domain without killing the fleet."""
        if state.quarantined or state.status is not None:
            return
        state.quarantined = True
        state.error = reason
        inc("sites_quarantined")
        _log.warning(
            "quarantining site %s (%s): %d/%d chunks committed; mode=%s",
            state.key,
            reason,
            len(state.committed),
            state.n_chunks,
            quarantine,
        )
        _emit(
            "site_quarantined",
            site=state.key,
            strategy=strategy.value,
            reason=reason,
            mode=quarantine,
            committed_chunks=len(state.committed),
            total_chunks=state.n_chunks,
        )
        if quarantine == "fail":
            _finalize(state, SiteStatus.FAILED)

    def _evaluate_in_parent(
        state: _SiteState, start: int, stop: int
    ) -> List[DesignEvaluation]:
        with span("evaluate_chunk", site=state.key, start=start, n_designs=stop - start):
            if batched:
                return list(
                    evaluate_block(state.context, state.designs[start:stop], strategy)
                )
            return [
                evaluate_design(state.context, state.designs[index], strategy)
                for index in range(start, stop)
            ]

    def _close_deadline(active: List[_SiteState]) -> None:
        dropped_chunks = sum(
            state.n_chunks - len(state.committed) for state in active
        )
        inc("chunks_deadline_dropped", dropped_chunks)
        set_gauge("fleet_deadline_remaining_s", 0.0)
        _emit(
            "deadline_exceeded",
            strategy=strategy.value,
            budget_s=deadline_s,
            dropped_chunks=dropped_chunks,
            sites=[state.key for state in active],
        )
        _log.warning(
            "fleet deadline (%.3fs) exceeded: dropping %d chunks across %d sites",
            deadline_s or 0.0,
            dropped_chunks,
            len(active),
        )
        for state in active:
            state.error = state.error or f"deadline of {deadline_s}s exceeded"
            _finalize(state, SiteStatus.DEADLINE_EXCEEDED)

    # ------------------------------------------------------------------
    # Setup: journals, resume, chunk queues, shared segments, events
    # ------------------------------------------------------------------
    interrupted = False
    pool: Optional[ProcessPoolExecutor] = None
    try:
        for state in states:
            path = fleet_checkpoint_path(checkpoint, state.key)
            if path is not None:
                fingerprint = sweep_fingerprint(state.context, state.space, strategy)
                if resume:
                    restored = load_resumable_chunks(
                        path,
                        fingerprint,
                        strategy,
                        state.total,
                        events=events,
                        site=state.key,
                    )
                    for start, evaluations in restored.items():
                        state.results[start : start + len(evaluations)] = evaluations
                    if restored:
                        skipped = sum(len(e) for e in restored.values())
                        inc("checkpoint_chunks_skipped", len(restored))
                        inc("checkpoint_designs_skipped", skipped)
                        done_points += skipped
                state.journal = CheckpointJournal(
                    path,
                    JournalHeader(
                        version=JOURNAL_VERSION,
                        fingerprint=fingerprint,
                        strategy=strategy.name,
                        total=state.total,
                    ),
                    truncate=not resume,
                )
            state.best_tons = min(
                (r.total_tons for r in state.results if r is not None),
                default=float("inf"),
            )
            filled = [r is not None for r in state.results]
            chunk_size = sweep_chunk_size(state.total, batch_size)
            state.chunks = _chunk_missing_indices(filled, chunk_size)
            state.queue = deque(state.chunks)
            state.n_chunks = len(state.chunks)
            _emit(
                "sweep_started",
                site=state.key,
                strategy=strategy.value,
                total=state.total,
                workers=workers,
                fleet=True,
            )
            if state.n_chunks == 0:
                # Fully restored from its journal: nothing left to sweep.
                _finalize(state, SiteStatus.COMPLETE)

        if progress is not None and done_points:
            progress(done_points, fleet_total, strategy.value)

        use_pool = workers > 1
        if use_pool:
            payloads: Dict[str, _ContextPayload] = {}
            for state in states:
                if shm and state.active:
                    try:
                        state.shared = share_context(state.context)
                        state.payload = state.shared.handle
                    except SharedContextError as error:
                        _log.warning(
                            "site %s: shared-memory trace plane unavailable "
                            "(%s); pickling its context to workers",
                            state.key,
                            error,
                        )
                payloads[state.key] = state.payload

        _log.info(
            "fleet sweep start: sites=%d strategy=%s grid_points=%d workers=%d "
            "deadline_s=%s",
            len(states),
            strategy.value,
            fleet_total,
            workers,
            deadline_s,
        )

        with span(
            "sweep_fleet",
            strategy=strategy.value,
            n_sites=len(states),
            grid_points=fleet_total,
            workers=workers,
        ):
            if not use_pool:
                _run_serial_fleet(
                    states,
                    strategy,
                    _commit,
                    _evaluate_in_parent,
                    _deadline_hit,
                    _close_deadline,
                    _remaining_s,
                )
            else:
                pool = _run_pooled_fleet(
                    states,
                    by_key,
                    strategy,
                    payloads,
                    workers,
                    max_retries,
                    faults,
                    batched,
                    timeout,
                    _commit,
                    _quarantine,
                    _deadline_hit,
                    _close_deadline,
                    _remaining_s,
                    _emit,
                )
                # Quarantine drain: quarantined-serial sites finish in-parent
                # after the pooled phase so healthy sites kept the workers.
                for state in states:
                    if not state.active:
                        continue
                    for ordinal, start, stop in state.remaining_chunks():
                        if _deadline_hit():
                            _close_deadline([s for s in states if s.active])
                            break
                        inc("serial_fallbacks")
                        evaluations = _evaluate_in_parent(state, start, stop)
                        _commit(state, ordinal, start, evaluations, None, serial=True)
                    if state.active:  # pragma: no cover - defensive
                        _finalize(state, SiteStatus.DEGRADED)

    except KeyboardInterrupt:
        interrupted = True
        raise FleetInterrupted(
            completed=tuple(
                _site_sweep(state) for state in states if state.status is not None
            ),
            pending=tuple(state.key for state in states if state.status is None),
            strategy=strategy.value,
            checkpoint=str(checkpoint) if checkpoint is not None else None,
        ) from None
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        for state in states:
            if state.shared is not None:
                state.shared.unlink()
            if state.journal is not None:
                state.journal.close()
        if not interrupted:
            remaining = _remaining_s()
            if remaining is not None:
                set_gauge("fleet_deadline_remaining_s", remaining)

    elapsed_s = time.monotonic() - started_s
    sweeps = tuple(_site_sweep(state) for state in states)
    _log.info(
        "fleet sweep done in %.2fs: %s",
        elapsed_s,
        {s.site: s.status.value for s in sweeps},
    )
    return FleetResult(
        strategy=strategy,
        sites=sweeps,
        deadline_s=deadline_s,
        elapsed_s=elapsed_s,
    )


def _round_robin_next(
    states: List[_SiteState], cursor: int
) -> Tuple[Optional[_SiteState], int]:
    """Next active, non-quarantined site with queued work, after ``cursor``."""
    n = len(states)
    for step in range(1, n + 1):
        index = (cursor + step) % n
        state = states[index]
        if state.active and not state.quarantined and state.queue:
            return state, index
    return None, cursor


def _run_serial_fleet(
    states: List[_SiteState],
    strategy: Strategy,
    commit: Callable[..., None],
    evaluate_in_parent: Callable[[_SiteState, int, int], List[DesignEvaluation]],
    deadline_hit: Callable[[], bool],
    close_deadline: Callable[[List[_SiteState]], None],
    remaining_s: Callable[[], Optional[float]],
) -> None:
    """In-process fleet sweep: site-interleaved, deadline-aware, streaming.

    Fault plans are not applied here — faults fire in pool workers, and
    the serial path *is* the fault-free oracle the pooled path is tested
    against.
    """
    cursor = -1
    while True:
        state, cursor = _round_robin_next(states, cursor)
        if state is None:
            break
        if deadline_hit():
            close_deadline([s for s in states if s.active])
            break
        ordinal, start, stop = state.queue.popleft()
        evaluations = evaluate_in_parent(state, start, stop)
        commit(state, ordinal, start, evaluations, None)
        remaining = remaining_s()
        if remaining is not None:
            set_gauge("fleet_deadline_remaining_s", remaining)


def _run_pooled_fleet(
    states: List[_SiteState],
    by_key: Dict[str, _SiteState],
    strategy: Strategy,
    payloads: Dict[str, _ContextPayload],
    workers: int,
    max_retries: int,
    faults: Optional[FleetFaultPlan],
    batched: bool,
    timeout: AdaptiveChunkTimeout,
    commit: Callable[..., None],
    quarantine: Callable[[_SiteState, str], None],
    deadline_hit: Callable[[], bool],
    close_deadline: Callable[[List[_SiteState]], None],
    remaining_s: Callable[[], Optional[float]],
    emit: Callable[..., None],
) -> ProcessPoolExecutor:
    """The shared-pool scheduling loop; returns the (last) pool for shutdown.

    One pool serves every site.  A ``BrokenProcessPool`` (a kill fault, a
    real OOM) is survived by failing the in-flight chunks and rebuilding
    the pool — bounded, because every rebuild consumes at least one chunk
    attempt and attempts are capped by ``max_retries`` before the
    offending site is quarantined.
    """

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_fleet_worker,
            initargs=(payloads, metrics_enabled(), tracing_enabled()),
            mp_context=_mp_context(),
        )

    pool = make_pool()
    flights: Dict[Future, _Flight] = {}
    #: Stalled flights still owed a result: committed if they land first,
    #: ignored otherwise (commit() is idempotent per ordinal).
    late: Dict[Future, _Flight] = {}
    max_in_flight = workers * _INFLIGHT_PER_WORKER
    cursor = -1

    def record_failure(flight: _Flight, error: BaseException) -> None:
        state = by_key[flight.site]
        if state.status is not None or flight.ordinal in state.committed:
            return
        inc("chunk_failures")
        if isinstance(error, SharedContextError):
            # The site's segment is unattachable for every worker; retrying
            # cannot help — isolate the fault domain immediately.
            quarantine(state, f"shm attach failed: {error}")
            return
        attempts = state.attempts.get(flight.ordinal, 0) + 1
        state.attempts[flight.ordinal] = attempts
        _log.warning(
            "fleet chunk failed: site=%s chunk=%d [%d:%d) attempt=%d: %s: %s",
            flight.site,
            flight.ordinal,
            flight.start,
            flight.stop,
            attempts,
            type(error).__name__,
            error,
        )
        if attempts > max_retries:
            quarantine(state, f"chunk {flight.ordinal} exhausted {max_retries} retries")
            return
        inc("chunk_retries")
        emit(
            "chunk_retried",
            site=flight.site,
            strategy=strategy.value,
            ordinal=flight.ordinal,
            start=flight.start,
            stop=flight.stop,
            attempt=attempts,
        )
        state.queue.append((flight.ordinal, flight.start, flight.stop))

    def work_remaining() -> bool:
        if flights:
            return True
        return any(
            state.active and not state.quarantined and state.queue
            for state in states
        )

    while work_remaining():
        if deadline_hit():
            close_deadline([state for state in states if state.active])
            break

        # Top up: interleave sites round-robin so none starves.
        pool_broken = False
        while len(flights) < max_in_flight:
            state, cursor = _round_robin_next(states, cursor)
            if state is None:
                break
            ordinal, start, stop = state.queue.popleft()
            if ordinal in state.committed:
                continue
            fault = (
                faults.action_for(state.key, ordinal, state.attempts.get(ordinal, 0))
                if faults is not None
                else None
            )
            try:
                future = pool.submit(
                    _evaluate_fleet_chunk,
                    state.key,
                    start,
                    state.designs[start:stop],
                    strategy,
                    fault,
                    batched,
                )
            except BrokenExecutor:
                # The pool died between completions; put the chunk back
                # (no attempt consumed — it never ran) and rebuild below.
                state.queue.appendleft((ordinal, start, stop))
                pool_broken = True
                break
            flights[future] = _Flight(
                site=state.key,
                ordinal=ordinal,
                start=start,
                stop=stop,
                submitted_s=time.monotonic(),
            )

        if flights or late:
            done, _ = wait(
                set(flights) | set(late),
                timeout=_TICK_S,
                return_when=FIRST_COMPLETED,
            )
            now = time.monotonic()
            for future in done:
                if future in late:
                    flight = late.pop(future)
                    state = by_key[flight.site]
                    # Already retried when declared stalled: commit the
                    # late result if sound, silently drop it otherwise.
                    if future.cancelled() or future.exception() is not None:
                        continue
                    try:
                        evaluations, telemetry = _validated_payload(
                            future.result(), flight
                        )
                    except ChunkValidationError:
                        continue
                    commit(state, flight.ordinal, flight.start, evaluations, telemetry)
                    continue
                flight = flights.pop(future)
                state = by_key[flight.site]
                try:
                    payload = future.result()
                    evaluations, telemetry = _validated_payload(payload, flight)
                except BrokenExecutor as error:
                    pool_broken = True
                    record_failure(flight, error)
                    continue
                except Exception as error:
                    record_failure(flight, error)
                    continue
                timeout.observe(now - flight.submitted_s)
                commit(state, flight.ordinal, flight.start, evaluations, telemetry)

            # Adaptive stall detection: an outstanding chunk past the
            # current EWMA-derived budget is requeued; its worker may be
            # wedged for good, so the late result is welcome but not
            # waited for.
            budget = timeout.budget_s()
            if budget is not None:
                for future, flight in list(flights.items()):
                    if now - flight.submitted_s <= budget:
                        continue
                    del flights[future]
                    if not future.cancel():
                        late[future] = flight
                    _log.warning(
                        "fleet chunk stalled: site=%s chunk=%d ran %.2fs "
                        "(budget %.2fs)",
                        flight.site,
                        flight.ordinal,
                        now - flight.submitted_s,
                        budget,
                    )
                    record_failure(
                        flight,
                        TimeoutError(
                            f"no result within the {budget:.2f}s stall budget"
                        ),
                    )

        if pool_broken:
            _log.warning(
                "fleet pool broke; failing %d in-flight chunks and rebuilding",
                len(flights),
            )
            for future, flight in list(flights.items()):
                record_failure(flight, BrokenExecutor("pool broke mid-flight"))
            flights.clear()
            late.clear()  # old pool's futures can never land
            # wait=True is cheap here — the workers are already dead — and
            # closes the old pool's pipes before its atexit hook can trip
            # over them.
            pool.shutdown(wait=True, cancel_futures=True)
            pool = make_pool()

        remaining = remaining_s()
        if remaining is not None:
            set_gauge("fleet_deadline_remaining_s", remaining)

    return pool


def _validated_payload(
    payload: Any, flight: _Flight
) -> Tuple[List[DesignEvaluation], Optional[Dict[str, Any]]]:
    """Shape-check one fleet worker payload against its flight."""
    if not isinstance(payload, tuple) or len(payload) != 4:
        raise ChunkValidationError(
            f"fleet chunk {flight.site}:{flight.ordinal}: payload is "
            f"{type(payload).__name__}, expected a 4-tuple"
        )
    site = payload[0]
    if site != flight.site:
        raise ChunkValidationError(
            f"fleet chunk {flight.site}:{flight.ordinal}: worker reported "
            f"site {site!r}"
        )
    _, evaluations, telemetry = validate_chunk_result(
        tuple(payload[1:]), flight.start, flight.stop - flight.start
    )
    return evaluations, telemetry
