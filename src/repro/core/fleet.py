"""Fleet sweep policy: all sites, one engine, per-site fault domains.

The paper's headline results (Figs. 9, 14, 15) rank all thirteen grids
against each other, but per-site :func:`repro.core.optimizer.optimize`
calls sweep them strictly one at a time — one wedged or faulty site
stalls the whole ranking, and an interrupt throws away every completed
site.  :func:`sweep_fleet` instead schedules the entire fleet over **one
shared worker pool**, as *policy* over the shared
:class:`repro.core.engine.SweepEngine` dispatch loop:

* **One shm segment per site** — every site's traces are packed into its
  own shared-memory segment (:mod:`repro.core.shm`); workers receive the
  full map of tiny handles at pool init and attach a site's segment
  lazily, the first time they evaluate one of its chunks.
* **Site-interleaved dispatch** — per-site chunk queues are drained
  round-robin, so a site with slow chunks cannot starve the others and
  partial results accrue across the whole fleet at once.
* **Cross-site work stealing** (``steal=True``, the default) — when a
  site's queue drains, its share of the in-flight budget is re-granted
  to the site with the largest remaining grid, so one oversized site
  cannot serialize behind its fair share once the small sites finish.
  Stealing moves *capacity*, never chunks, so per-site results stay
  bitwise-identical with it on or off.
* **Per-site fault domains** — a site whose segment cannot be attached,
  whose chunks exhaust their retries, or whose payloads keep failing
  validation is *quarantined*: its remaining chunks degrade to serial
  in-parent evaluation (or the site is marked failed, with
  ``quarantine="fail"``) while every other site keeps sweeping.  Chunk
  evaluation is deterministic, so a quarantined-but-completed site is
  still bitwise-identical to a fault-free serial sweep.
* **Deadline budgets** — ``deadline_s`` bounds the fleet's wall clock;
  when it trips, unfinished sites are closed out as
  ``deadline_exceeded`` with their partial frontiers instead of hanging
  the caller.  Stall detection is *adaptive*: an EWMA over observed
  chunk durations (:class:`repro.resilience.AdaptiveChunkTimeout`)
  replaces the one-size fixed ``chunk_timeout``.
* **Streaming partial results** — the sweep narrates itself onto a
  :class:`repro.obs.SweepEvents` bus (``sweep_started`` /
  ``chunk_completed`` / ``frontier_updated`` / ``capacity_stolen`` /
  ``site_quarantined`` / ``sweep_degraded`` / ``deadline_exceeded`` /
  ``sweep_finished``).  :func:`prepare_fleet` returns a handle whose
  ``results()`` iterator streams those events and ends with the sweep —
  what ``repro rank --stream`` consumes — while push subscribers keep
  working as before.

Chunk boundaries come from the same pure
:func:`~repro.core.engine.sweep_chunk_size` function :func:`optimize`
uses, and per-site journals are written with the same fingerprints — a
fleet journal resumes under :func:`optimize` and vice versa (both paths
derive journal names through
:func:`repro.resilience.checkpoint.sweep_journal_path`).

Retry semantics differ from :func:`optimize` deliberately: a failed
chunk is requeued at the tail of its site's queue instead of waiting out
an exponential-backoff window, because the shared pool keeps serving the
other sites in the meantime — the interleaving itself provides the
spacing that backoff buys a single-site sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

from ..obs import ProgressCallback, SweepEvents, get_logger, span
from ..obs.events import SweepEvent
from ..resilience import AdaptiveChunkTimeout, FleetFaultPlan
from ..resilience.checkpoint import PathLike, sweep_journal_path
from .design import DesignSpace, Strategy
from .engine import EngineSite, SiteRun, SiteStatus, SweepEngine
from .evaluate import DesignEvaluation, SiteContext
from .optimizer import OptimizationResult
from .pareto import pareto_frontier

_log = get_logger("core.fleet")

#: One fleet site: (site key, context, design space).  Keys must be unique;
#: the CLI uses state codes.
FleetSite = EngineSite


@dataclass(frozen=True)
class SiteSweep:
    """One site's outcome inside a :class:`FleetResult`.

    ``evaluations`` holds every *committed* evaluation in grid order —
    the full grid for ``complete``/``degraded`` sites, a partial prefix
    pattern for ``failed``/``deadline_exceeded`` ones.  ``result`` is the
    site's :class:`~repro.core.optimizer.OptimizationResult` when the
    sweep finished (bitwise-identical to a standalone fault-free serial
    :func:`~repro.core.optimizer.optimize`), else ``None``.
    """

    site: str
    status: SiteStatus
    total: int
    completed: int
    evaluations: Tuple[DesignEvaluation, ...]
    result: Optional[OptimizationResult]
    quarantined: bool = False
    error: Optional[str] = None

    @property
    def best(self) -> Optional[DesignEvaluation]:
        """Lowest-carbon evaluation committed so far (partial or final)."""
        if not self.evaluations:
            return None
        return min(self.evaluations, key=lambda e: e.total_tons)

    def frontier(self) -> Tuple[DesignEvaluation, ...]:
        """Pareto frontier of the committed evaluations (partial or final)."""
        return pareto_frontier(self.evaluations)


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one fleet sweep: per-site status alongside partial results.

    Unlike a plain list of :class:`OptimizationResult`, a fleet sweep can
    *partially* succeed — that is the point.  Sites appear in input order.
    """

    strategy: Strategy
    sites: Tuple[SiteSweep, ...]
    deadline_s: Optional[float]
    elapsed_s: float

    def site(self, key: str) -> SiteSweep:
        """Look up one site's sweep by key."""
        for sweep in self.sites:
            if sweep.site == key:
                return sweep
        raise KeyError(f"no site {key!r} in this fleet result")

    def statuses(self) -> Dict[str, str]:
        """Site key → status value, in input order."""
        return {sweep.site: sweep.status.value for sweep in self.sites}

    @property
    def complete(self) -> bool:
        """Whether every site finished clean (no degradation, no drops)."""
        return all(sweep.status is SiteStatus.COMPLETE for sweep in self.sites)

    @property
    def finished(self) -> Tuple[SiteSweep, ...]:
        """Sites that produced a full :class:`OptimizationResult`."""
        return tuple(sweep for sweep in self.sites if sweep.result is not None)


class FleetInterrupted(KeyboardInterrupt):
    """A fleet sweep was interrupted; completed sites survive.

    Subclasses :class:`KeyboardInterrupt` (like
    :class:`~repro.resilience.SweepInterrupted`) so generic ``except
    Exception`` handlers cannot swallow it.  ``completed`` carries every
    site that finished before the interrupt — the CLI prints the partial
    rank table from it — and per-site journals (when checkpointing) hold
    every committed chunk for ``--resume``.
    """

    def __init__(
        self,
        completed: Tuple[SiteSweep, ...],
        pending: Tuple[str, ...],
        strategy: str,
        checkpoint: Optional[str] = None,
    ) -> None:
        super().__init__()
        self.completed = completed
        self.pending = pending
        self.strategy = strategy
        self.checkpoint = checkpoint

    def __str__(self) -> str:
        done = ", ".join(s.site for s in self.completed) or "none"
        return (
            f"fleet sweep interrupted: completed sites [{done}], "
            f"{len(self.pending)} pending ({self.strategy})"
        )


def fleet_checkpoint_path(checkpoint: Optional[PathLike], site: str) -> Optional[str]:
    """Per-site journal path derived from a base checkpoint path.

    Thin wrapper over :func:`repro.resilience.checkpoint.sweep_journal_path`
    — the suffix scheme ``repro rank --checkpoint`` has always used
    (``<base>.<site lowercase>``), shared with per-strategy journals so
    fleet journals and per-site :func:`~repro.core.optimizer.optimize`
    journals are interchangeable.
    """
    return sweep_journal_path(checkpoint, site)


def _site_sweep(state: SiteRun, strategy: Strategy) -> SiteSweep:
    """Freeze one engine site's terminal state into a :class:`SiteSweep`."""
    status = state.status
    assert status is not None, "site closed without a terminal status"
    evaluations = state.partial_evaluations()
    result: Optional[OptimizationResult] = None
    if status in (SiteStatus.COMPLETE, SiteStatus.DEGRADED):
        best = min(evaluations, key=lambda e: e.total_tons)
        result = OptimizationResult(
            strategy=strategy, best=best, evaluations=evaluations
        )
    return SiteSweep(
        site=state.key,
        status=status,
        total=state.total,
        completed=len(evaluations),
        evaluations=evaluations,
        result=result,
        quarantined=state.quarantined,
        error=state.error,
    )


class FleetSweep:
    """A prepared fleet sweep: run it, and stream its results meanwhile.

    Returned by :func:`prepare_fleet`.  :meth:`run` executes the sweep to
    a :class:`FleetResult`; :meth:`results` is a blocking iterator over
    the sweep's event bus that ends when the sweep does — consume it from
    another thread (or via ``asyncio.to_thread``) while :meth:`run`
    executes on this one, e.g.::

        handle = prepare_fleet(sites, strategy, workers=4, events=bus)
        thread = threading.Thread(
            target=lambda: [print(e.kind) for e in handle.results()]
        )
        thread.start()
        fleet = handle.run()
        thread.join()

    Push subscribers on the bus keep working unchanged; the iterator is
    the callback-free way to consume frontiers as they improve.
    """

    def __init__(
        self,
        engine: SweepEngine,
        strategy: Strategy,
        deadline_s: Optional[float],
        checkpoint: Optional[PathLike],
    ) -> None:
        self._engine = engine
        self._strategy = strategy
        self._deadline_s = deadline_s
        self._checkpoint = checkpoint
        self._started_s = time.monotonic()

    @property
    def events(self) -> SweepEvents:
        """The bus this sweep narrates onto (engine-owned if none given)."""
        return self._engine.events

    def results(self) -> Iterator[SweepEvent]:
        """Stream the sweep's events; ends when the sweep finishes."""
        return self._engine.results()

    def run(self) -> FleetResult:
        """Execute the sweep; always returns a (possibly partial) result.

        Raises :class:`FleetInterrupted` on Ctrl-C, carrying every site
        that finished before the interrupt.
        """
        engine = self._engine
        strategy = self._strategy
        interrupted = False
        try:
            engine.setup()
            _log.info(
                "fleet sweep start: sites=%d strategy=%s grid_points=%d "
                "workers=%d deadline_s=%s",
                len(engine.states),
                strategy.value,
                engine.fleet_total,
                engine.workers,
                self._deadline_s,
            )
            with span(
                "sweep_fleet",
                strategy=strategy.value,
                n_sites=len(engine.states),
                grid_points=engine.fleet_total,
                workers=engine.workers,
            ):
                engine.dispatch()
        except KeyboardInterrupt:
            interrupted = True
            raise FleetInterrupted(
                completed=tuple(
                    _site_sweep(state, strategy)
                    for state in engine.states
                    if state.status is not None
                ),
                pending=tuple(
                    state.key for state in engine.states if state.status is None
                ),
                strategy=strategy.value,
                checkpoint=(
                    str(self._checkpoint) if self._checkpoint is not None else None
                ),
            ) from None
        finally:
            engine.cleanup(interrupted=interrupted)

        elapsed_s = time.monotonic() - self._started_s
        result = FleetResult(
            strategy=strategy,
            sites=tuple(_site_sweep(state, strategy) for state in engine.states),
            deadline_s=self._deadline_s,
            elapsed_s=elapsed_s,
        )
        _log.info(
            "fleet sweep done in %.2fs: %s", elapsed_s, result.statuses()
        )
        return result


def prepare_fleet(
    sites: Sequence[FleetSite],
    strategy: Strategy,
    *,
    workers: int = 1,
    deadline_s: Optional[float] = None,
    max_retries: int = 2,
    chunk_timeout: Optional[float] = None,
    timeout_multiplier: float = 8.0,
    timeout_floor_s: float = 0.25,
    checkpoint: Optional[PathLike] = None,
    resume: bool = False,
    faults: Optional[FleetFaultPlan] = None,
    quarantine: str = "serial",
    shm: bool = True,
    events: Optional[SweepEvents] = None,
    batch_size: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    steal: bool = True,
) -> FleetSweep:
    """Validate a fleet sweep and build its engine, without running it.

    Returns a :class:`FleetSweep` handle: call :meth:`FleetSweep.run` to
    execute (what :func:`sweep_fleet` does), and consume
    :meth:`FleetSweep.results` from another thread to stream events
    without registering callbacks.  All arguments match
    :func:`sweep_fleet`.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if deadline_s is not None and deadline_s <= 0:
        raise ValueError(f"deadline_s must be positive or None, got {deadline_s}")
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if quarantine not in ("serial", "fail"):
        raise ValueError(f"quarantine must be 'serial' or 'fail', got {quarantine!r}")
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint path")
    if not sites:
        raise ValueError("sweep_fleet needs at least one site")
    keys = [key for key, _, _ in sites]
    if len(set(keys)) != len(keys):
        raise ValueError(f"duplicate site keys in fleet: {keys}")

    engine = SweepEngine(
        sites,
        strategy,
        workers=workers,
        fleet=True,
        deadline_s=deadline_s,
        max_retries=max_retries,
        timeout=AdaptiveChunkTimeout(
            initial_s=chunk_timeout,
            multiplier=timeout_multiplier,
            floor_s=timeout_floor_s,
        ),
        checkpoints=(
            {key: fleet_checkpoint_path(checkpoint, key) for key in keys}
            if checkpoint is not None
            else None
        ),
        resume=resume,
        faults=faults,
        quarantine=quarantine,
        shm=shm,
        events=events,
        batch_size=batch_size,
        progress=progress,
        steal=steal,
    )
    for state in engine.states:
        if state.total == 0:
            raise ValueError(
                f"design space for site {state.key!r} produced no points"
            )
    return FleetSweep(engine, strategy, deadline_s, checkpoint)


def sweep_fleet(
    sites: Sequence[FleetSite],
    strategy: Strategy,
    *,
    workers: int = 1,
    deadline_s: Optional[float] = None,
    max_retries: int = 2,
    chunk_timeout: Optional[float] = None,
    timeout_multiplier: float = 8.0,
    timeout_floor_s: float = 0.25,
    checkpoint: Optional[PathLike] = None,
    resume: bool = False,
    faults: Optional[FleetFaultPlan] = None,
    quarantine: str = "serial",
    shm: bool = True,
    events: Optional[SweepEvents] = None,
    batch_size: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    steal: bool = True,
) -> FleetResult:
    """Sweep every site of a fleet over one shared worker pool.

    Semantics (per-site fault domains, quarantine, deadline budgets,
    adaptive stall detection, journals, events, work stealing) are
    described in the module docstring; parameters mirror
    :func:`~repro.core.optimizer.optimize` where they overlap:

    * ``sites`` — ``(key, context, space)`` triples; keys must be unique.
    * ``workers`` — pool size shared by the whole fleet; ``1`` sweeps
      serially in-process (round-robin across sites, fault-free oracle).
    * ``deadline_s`` — fleet-wide wall-clock budget; ``None`` is
      unbounded.
    * ``chunk_timeout`` — initial stall budget; the EWMA over observed
      chunk durations (scaled by ``timeout_multiplier``, floored at
      ``timeout_floor_s``) takes over as completions accrue.
    * ``checkpoint`` — *base* journal path; each site journals to
      ``<base>.<site lowercase>`` (same scheme as ``repro rank``).
    * ``faults`` — site-scoped :class:`~repro.resilience.FleetFaultPlan`
      (tests and CI only).
    * ``quarantine`` — ``"serial"`` finishes a quarantined site's chunks
      serially in-parent (status ``degraded``); ``"fail"`` closes it out
      immediately (status ``failed``).
    * ``steal`` — cross-site work stealing (default on); capacity moves,
      chunks don't, so results are bitwise-identical either way.

    Returns a :class:`FleetResult` with per-site statuses and partial
    frontiers; raises :class:`FleetInterrupted` on Ctrl-C.
    """
    return prepare_fleet(
        sites,
        strategy,
        workers=workers,
        deadline_s=deadline_s,
        max_retries=max_retries,
        chunk_timeout=chunk_timeout,
        timeout_multiplier=timeout_multiplier,
        timeout_floor_s=timeout_floor_s,
        checkpoint=checkpoint,
        resume=resume,
        faults=faults,
        quarantine=quarantine,
        shm=shm,
        events=events,
        batch_size=batch_size,
        progress=progress,
        steal=steal,
    ).run()
