"""Coarse-to-fine refinement of the exhaustive search.

The paper's optimizer "exhaustively searches the design space", which scales
as the product of axis resolutions.  For fine answers (e.g. battery sizes to
the MWh) a dense grid is wasteful: the objective is smooth enough in
practice that zooming a coarse grid around its incumbent optimum finds
designs at least as good at a fraction of the evaluations.

:func:`refine_optimize` runs the plain exhaustive pass on the caller's grid,
then repeatedly rebuilds each continuous axis (solar, wind, battery) as a
finer grid spanning the incumbent's grid neighbourhood and re-optimizes.
The incumbent is always carried forward, so the result is never worse than
single-pass exhaustive search on the same initial grid.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence, Tuple

from .design import DesignSpace, Strategy
from .evaluate import DesignEvaluation, SiteContext
from .optimizer import OptimizationResult, optimize
from .pareto import knee_point, pareto_frontier
from ..timeseries.stats import bitwise_equal


def _axis_neighbourhood(axis: Sequence[float], best: float, points: int) -> Tuple[float, ...]:
    """A finer grid spanning the two grid cells around ``best``.

    For an axis with one value (a collapsed resource) the axis is returned
    unchanged.
    """
    values = tuple(axis)
    if len(values) == 1:
        return values
    index = min(range(len(values)), key=lambda i: abs(values[i] - best))
    low = values[max(index - 1, 0)]
    high = values[min(index + 1, len(values) - 1)]
    if bitwise_equal(high, low):
        return (low,)
    step = (high - low) / (points - 1)
    return tuple(low + step * i for i in range(points))


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of coarse-to-fine optimization.

    Attributes
    ----------
    best:
        The best evaluation found across all rounds.
    rounds:
        The per-round :class:`OptimizationResult` objects, first = coarse.
    total_evaluations:
        Sum of designs evaluated across rounds.
    """

    best: "object"
    rounds: Tuple[OptimizationResult, ...]
    total_evaluations: int


def refine_optimize(
    context: SiteContext,
    space: DesignSpace,
    strategy: Strategy,
    n_rounds: int = 2,
    points_per_axis: int = 5,
) -> RefinementResult:
    """Exhaustive search followed by ``n_rounds`` of zoom refinement.

    Parameters
    ----------
    context, space, strategy:
        As for :func:`repro.core.optimizer.optimize`; ``space`` is the
        initial coarse grid.
    n_rounds:
        Zoom iterations after the coarse pass (each shrinks the search
        window to the incumbent's grid neighbourhood).
    points_per_axis:
        Resolution of each zoomed axis.
    """
    if n_rounds < 0:
        raise ValueError(f"n_rounds must be non-negative, got {n_rounds}")
    if points_per_axis < 2:
        raise ValueError(f"points_per_axis must be >= 2, got {points_per_axis}")

    rounds = [optimize(context, space, strategy)]
    best = rounds[0].best
    current_space = space

    for _ in range(n_rounds):
        design = best.design
        current_space = dataclasses.replace(
            current_space,
            solar_mw=_axis_neighbourhood(
                current_space.solar_mw, design.investment.solar_mw, points_per_axis
            ),
            wind_mw=_axis_neighbourhood(
                current_space.wind_mw, design.investment.wind_mw, points_per_axis
            ),
            battery_mwh=_axis_neighbourhood(
                current_space.battery_mwh, design.battery_mwh, points_per_axis
            ),
        )
        result = optimize(context, current_space, strategy)
        rounds.append(result)
        if result.best.total_tons < best.total_tons:
            best = result.best

    return RefinementResult(
        best=best,
        rounds=tuple(rounds),
        total_evaluations=sum(r.n_evaluated for r in rounds),
    )


@dataclass(frozen=True)
class FrontierRefinementResult:
    """Outcome of Pareto-frontier refinement.

    Attributes
    ----------
    frontier:
        The Pareto frontier of every design evaluated across all rounds.
    best:
        The knee (minimum total carbon) of that merged frontier.
    rounds:
        Per-zoom :class:`OptimizationResult` objects, first = coarse pass.
    total_evaluations:
        Sum of designs evaluated across rounds.
    """

    frontier: Tuple[DesignEvaluation, ...]
    best: DesignEvaluation
    rounds: Tuple[OptimizationResult, ...]
    total_evaluations: int


def _zoom_space(space: DesignSpace, evaluation, points_per_axis: int) -> DesignSpace:
    """``space`` shrunk to the grid neighbourhood of one evaluation."""
    design = evaluation.design
    return dataclasses.replace(
        space,
        solar_mw=_axis_neighbourhood(
            space.solar_mw, design.investment.solar_mw, points_per_axis
        ),
        wind_mw=_axis_neighbourhood(
            space.wind_mw, design.investment.wind_mw, points_per_axis
        ),
        battery_mwh=_axis_neighbourhood(
            space.battery_mwh, design.battery_mwh, points_per_axis
        ),
    )


def refine_frontier(
    context: SiteContext,
    space: DesignSpace,
    strategy: Strategy,
    n_rounds: int = 1,
    points_per_axis: int = 5,
    neighbourhood: int = 1,
    batch_size: "int | None" = None,
) -> FrontierRefinementResult:
    """Coarse-to-fine refinement of the whole Pareto frontier.

    :func:`refine_optimize` zooms on the single incumbent, which sharpens
    the knee but leaves the rest of the frontier at coarse resolution.
    This variant zooms on the knee *neighbourhood* — the knee and its
    ``neighbourhood`` flanking frontier points on each side — re-optimizes
    each zoomed window, and merges every evaluation before re-deriving the
    frontier, so the curve's bend (the paper's headline region) is refined
    rather than a single point.  The merged frontier is never worse than
    the coarse one: the coarse evaluations stay in the merge.

    Parameters
    ----------
    context, space, strategy:
        As for :func:`repro.core.optimizer.optimize`; ``space`` is the
        initial coarse grid.
    n_rounds:
        Zoom iterations after the coarse pass; each re-derives the knee
        neighbourhood from the current merged frontier.
    points_per_axis:
        Resolution of each zoomed axis.
    neighbourhood:
        Frontier points on each side of the knee to anchor extra zoom
        windows on (0 = knee only).
    batch_size:
        Forwarded to :func:`optimize` — frontier refinement composes with
        the batched (design x hour) kernels, which is what makes many
        small zoom sweeps cheap.
    """
    if n_rounds < 0:
        raise ValueError(f"n_rounds must be non-negative, got {n_rounds}")
    if points_per_axis < 2:
        raise ValueError(f"points_per_axis must be >= 2, got {points_per_axis}")
    if neighbourhood < 0:
        raise ValueError(f"neighbourhood must be non-negative, got {neighbourhood}")

    coarse = optimize(context, space, strategy, batch_size=batch_size)
    rounds = [coarse]
    evaluations = list(coarse.evaluations)

    for _ in range(n_rounds):
        frontier = pareto_frontier(evaluations)
        knee = knee_point(frontier)
        knee_index = frontier.index(knee)
        lo = max(knee_index - neighbourhood, 0)
        hi = min(knee_index + neighbourhood, len(frontier) - 1)
        anchors = frontier[lo : hi + 1]
        seen = set()
        for anchor in anchors:
            zoomed = _zoom_space(space, anchor, points_per_axis)
            key = (zoomed.solar_mw, zoomed.wind_mw, zoomed.battery_mwh)
            if key in seen:
                continue
            seen.add(key)
            result = optimize(context, zoomed, strategy, batch_size=batch_size)
            rounds.append(result)
            evaluations.extend(result.evaluations)

    frontier = pareto_frontier(evaluations)
    return FrontierRefinementResult(
        frontier=frontier,
        best=knee_point(frontier),
        rounds=tuple(rounds),
        total_evaluations=sum(r.n_evaluated for r in rounds),
    )
