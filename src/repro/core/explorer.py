"""The :class:`CarbonExplorer` facade — the library's one-stop public API.

One ``CarbonExplorer`` instance binds a datacenter site to one simulated
year (demand trace + grid data) and exposes every analysis in the paper:
coverage surfaces (Fig. 7/8), battery sizing (Fig. 9), scheduling and
capacity planning (Figs. 11/12), scenario intensities (Fig. 6), Pareto
frontiers (Fig. 14), and carbon-optimal design search (Fig. 15).

Example
-------
>>> from repro import CarbonExplorer, Strategy
>>> explorer = CarbonExplorer("UT")
>>> explorer.coverage_of_existing_investment()  # doctest: +SKIP
0.51...
>>> result = explorer.optimize(Strategy.RENEWABLES_BATTERY)  # doctest: +SKIP
>>> result.best.design.describe()  # doctest: +SKIP
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..battery import BatterySpec, BatterySimResult, capacity_for_full_coverage, simulate_battery
from ..carbon import EmbodiedCarbonModel, DEFAULT_EMBODIED_MODEL, SupplyScenario, scenario_intensity
from ..datacenter import UtilizationProfile, regional_investment
from ..grid import RenewableInvestment, projected_supply
from ..scheduling import (
    CombinedResult,
    ScheduleResult,
    additional_capacity_for_full_coverage,
    schedule_carbon_aware,
    simulate_combined,
)
from ..timeseries import DEFAULT_CALENDAR, HourlySeries
from .coverage import renewable_coverage
from .design import DesignPoint, DesignSpace, Strategy, default_design_space
from .evaluate import DesignEvaluation, SiteContext, build_site_context, evaluate_design
from .optimizer import OptimizationResult, optimize, optimize_all_strategies
from .pareto import pareto_frontier


class CarbonExplorer:
    """Design-space exploration for one datacenter site and year.

    Parameters
    ----------
    state:
        Table-1 site code (e.g. ``"UT"``, ``"OR"``, ``"NC"``).
    year:
        Simulated calendar year (defaults to the paper's 2020).
    seed:
        Base seed for the synthetic weather and demand.
    profile:
        Utilization profile for demand synthesis.
    embodied:
        Embodied-carbon coefficients (defaults to the paper's values).
    """

    def __init__(
        self,
        state: str,
        year: int = DEFAULT_CALENDAR.year,
        seed: int = 0,
        profile: UtilizationProfile = UtilizationProfile(),
        embodied: EmbodiedCarbonModel = DEFAULT_EMBODIED_MODEL,
    ) -> None:
        self.context = build_site_context(
            state, year=year, seed=seed, profile=profile, embodied=embodied
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def demand_power(self) -> HourlySeries:
        """The site's hourly facility power, MW."""
        return self.context.demand.power

    @property
    def avg_power_mw(self) -> float:
        """Average facility power, MW."""
        return self.context.demand.avg_power_mw

    @property
    def state(self) -> str:
        """The site's state code."""
        return self.context.site_state

    def existing_investment(self) -> RenewableInvestment:
        """Meta's Table-1 renewable investment in this site's region."""
        return regional_investment(self.state)

    def renewable_supply(self, investment: RenewableInvestment) -> HourlySeries:
        """Hourly renewable supply projected from an investment (§4.1)."""
        return projected_supply(self.context.grid, investment)

    # ------------------------------------------------------------------
    # Coverage analyses (Figs. 7, 8)
    # ------------------------------------------------------------------
    def coverage(self, investment: RenewableInvestment) -> float:
        """Energy-weighted 24/7 coverage of an investment, in [0, 1]."""
        return renewable_coverage(self.demand_power, self.renewable_supply(investment))

    def coverage_of_existing_investment(self) -> float:
        """Coverage of Meta's current regional investment (Fig. 7's lines)."""
        return self.coverage(self.existing_investment())

    def coverage_surface(
        self,
        solar_axis_mw: Iterable[float],
        wind_axis_mw: Iterable[float],
    ) -> List[Tuple[float, float, float]]:
        """Coverage for every (solar, wind) grid point — Figure 7's surface.

        Returns ``(solar_mw, wind_mw, coverage)`` triples in row-major
        order (solar outer, wind inner).
        """
        surface = []
        for solar in solar_axis_mw:
            for wind in wind_axis_mw:
                investment = RenewableInvestment(solar_mw=solar, wind_mw=wind)
                surface.append((solar, wind, self.coverage(investment)))
        return surface

    def coverage_with_average_day_supply(self, investment: RenewableInvestment) -> float:
        """Coverage if every day had the yearly-average supply profile.

        The "average-day fallacy" of Fig. 8: this is the overly optimistic
        number a designer gets from averaged data.
        """
        supply = self.renewable_supply(investment).as_average_day()
        return renewable_coverage(self.demand_power, supply)

    # ------------------------------------------------------------------
    # Battery analyses (Figs. 9, 16)
    # ------------------------------------------------------------------
    def simulate_battery(
        self, investment: RenewableInvestment, spec: BatterySpec
    ) -> BatterySimResult:
        """Operate a battery against this site's demand and an investment."""
        return simulate_battery(self.demand_power, self.renewable_supply(investment), spec)

    def battery_mwh_for_full_coverage(
        self, investment: RenewableInvestment, max_hours_of_load: float = 48.0
    ) -> float:
        """Smallest battery (MWh) reaching 24/7 coverage, or ``inf`` (Fig. 9)."""
        return capacity_for_full_coverage(
            self.demand_power,
            self.renewable_supply(investment),
            max_hours_of_load=max_hours_of_load,
        )

    def battery_hours_for_full_coverage(
        self, investment: RenewableInvestment, max_hours_of_load: float = 48.0
    ) -> float:
        """Same as :meth:`battery_mwh_for_full_coverage`, in hours of average
        load — the paper's "computational hours" unit."""
        mwh = self.battery_mwh_for_full_coverage(investment, max_hours_of_load)
        return mwh / self.avg_power_mw

    # ------------------------------------------------------------------
    # Scheduling analyses (Figs. 11, 12)
    # ------------------------------------------------------------------
    def schedule(
        self,
        investment: RenewableInvestment,
        capacity_mw: float,
        flexible_ratio: float,
    ) -> ScheduleResult:
        """Run the paper's greedy CAS against an investment (Fig. 11)."""
        return schedule_carbon_aware(
            self.demand_power,
            self.renewable_supply(investment),
            self.context.grid_intensity,
            capacity_mw=capacity_mw,
            flexible_ratio=flexible_ratio,
        )

    def additional_capacity_for_full_coverage(
        self, investment: RenewableInvestment, flexible_ratio: float = 1.0
    ) -> float:
        """Extra-server fraction needed for 24/7 via CAS alone (Fig. 12)."""
        return additional_capacity_for_full_coverage(
            self.demand_power,
            self.renewable_supply(investment),
            self.context.grid_intensity,
            flexible_ratio=flexible_ratio,
        )

    def simulate_combined(
        self,
        investment: RenewableInvestment,
        spec: BatterySpec,
        capacity_mw: float,
        flexible_ratio: float,
    ) -> CombinedResult:
        """Run the battery-first combined heuristic (§5.2)."""
        return simulate_combined(
            self.demand_power,
            self.renewable_supply(investment),
            spec,
            capacity_mw=capacity_mw,
            flexible_ratio=flexible_ratio,
        )

    # ------------------------------------------------------------------
    # Scenario intensity (Fig. 6)
    # ------------------------------------------------------------------
    def scenario_intensity(
        self,
        scenario: SupplyScenario,
        investment: Optional[RenewableInvestment] = None,
        residual_import: Optional[HourlySeries] = None,
    ) -> HourlySeries:
        """Hourly effective carbon intensity under a supply scenario.

        ``investment`` defaults to the site's existing regional investment.
        """
        if investment is None:
            investment = self.existing_investment()
        return scenario_intensity(
            scenario,
            self.demand_power,
            self.renewable_supply(investment),
            self.context.grid_intensity,
            residual_import=residual_import,
        )

    # ------------------------------------------------------------------
    # Holistic optimization (Figs. 14, 15)
    # ------------------------------------------------------------------
    def default_space(self, **overrides) -> DesignSpace:
        """The default bounded design space for this site's size/resources."""
        kwargs = dict(
            avg_power_mw=self.avg_power_mw,
            supports_solar=self.context.supports_solar,
            supports_wind=self.context.supports_wind,
        )
        kwargs.update(overrides)
        return default_design_space(**kwargs)

    def evaluate(self, design: DesignPoint, strategy: Strategy) -> DesignEvaluation:
        """Evaluate one design end-to-end under a strategy."""
        return evaluate_design(self.context, design, strategy)

    def optimize(
        self,
        strategy: Strategy,
        space: Optional[DesignSpace] = None,
        workers: int = 1,
        **resilience,
    ) -> OptimizationResult:
        """Exhaustive carbon minimization under one strategy.

        ``workers > 1`` fans the sweep across a process pool, shipping the
        context through the zero-copy shared-memory trace plane
        (:mod:`repro.core.shm`); the result is bitwise-identical to a
        serial sweep (see :func:`repro.core.optimize`).  Further keyword
        arguments (``max_retries``, ``chunk_timeout``, ``backoff_s``,
        ``checkpoint``, ``resume``, ``faults``, ``shm``, ``batch_size``)
        configure the sweep's fault tolerance, checkpoint/resume
        behaviour, the trace plane, and tensorized (design × hour) chunk
        evaluation — see :func:`repro.core.optimize` and
        :mod:`repro.resilience`.
        """
        if space is None:
            space = self.default_space()
        return optimize(self.context, space, strategy, workers=workers, **resilience)

    def optimize_all(
        self,
        space: Optional[DesignSpace] = None,
        workers: int = 1,
        **resilience,
    ) -> Dict[Strategy, OptimizationResult]:
        """Carbon-optimal design per strategy — one Fig. 15 column.

        Resilience keyword arguments are forwarded to every per-strategy
        sweep (``checkpoint`` becomes a per-strategy base path; see
        :func:`repro.core.optimize_all_strategies`).
        """
        return optimize_all_strategies(
            self.context, space, workers=workers, **resilience
        )

    def pareto(
        self,
        strategy: Strategy,
        space: Optional[DesignSpace] = None,
        workers: int = 1,
        **resilience,
    ) -> Tuple[DesignEvaluation, ...]:
        """Operational-vs-embodied Pareto frontier for a strategy (Fig. 14)."""
        return pareto_frontier(
            self.optimize(strategy, space, workers=workers, **resilience).evaluations
        )
