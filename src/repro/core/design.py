"""Design points, strategies, and design-space grids (paper §2, §5).

A *design point* is one candidate configuration of the three solution
dimensions Carbon Explorer explores: renewable investment (solar and wind
MW), battery capacity (MWh, with a depth-of-discharge setting), and extra
server capacity for demand response (a fraction of the baseline fleet,
active only when carbon-aware scheduling is enabled).

A *strategy* restricts which dimensions are allowed — the four bars per
region of Figure 15: renewables only, renewables+battery, renewables+CAS,
and all three combined.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, replace
from enum import Enum, unique
from typing import Iterator, Sequence, Tuple

from ..battery import LFP, BatterySpec, CellChemistry
from ..datacenter.workloads import DEFAULT_FLEXIBLE_WORKLOAD_RATIO
from ..grid.scaling import RenewableInvestment


class DesignSpaceError(ValueError):
    """A design-space grid is invalid (empty, negative, NaN, or unsorted axes).

    Subclasses :class:`ValueError` so existing ``except ValueError``
    callers keep working; axis problems are caught at construction with a
    typed error instead of surfacing later as kernel garbage (NaN carbon
    totals, empty sweeps)."""


@unique
class Strategy(Enum):
    """The four solution portfolios of the holistic analysis (§5.2)."""

    RENEWABLES_ONLY = "renewables"
    RENEWABLES_BATTERY = "renewables + battery"
    RENEWABLES_CAS = "renewables + CAS"
    RENEWABLES_BATTERY_CAS = "renewables + battery + CAS"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def uses_battery(self) -> bool:
        """Whether this strategy may deploy storage."""
        return self in (Strategy.RENEWABLES_BATTERY, Strategy.RENEWABLES_BATTERY_CAS)

    @property
    def uses_scheduling(self) -> bool:
        """Whether this strategy may shift workloads."""
        return self in (Strategy.RENEWABLES_CAS, Strategy.RENEWABLES_BATTERY_CAS)


@dataclass(frozen=True)
class DesignPoint:
    """One candidate datacenter design.

    Attributes
    ----------
    investment:
        Solar and wind capacity purchased, MW.
    battery_mwh:
        Battery nameplate capacity, MWh (0 = no battery).
    depth_of_discharge:
        Usable fraction of the battery (the §5.2 DoD study knob).
    extra_capacity_fraction:
        Additional servers as a fraction of the baseline fleet, for
        deferred-work execution (0 = no over-provisioning).
    flexible_ratio:
        FWR — fraction of each hour's load the scheduler may move (only
        meaningful when the strategy schedules).
    """

    investment: RenewableInvestment
    battery_mwh: float = 0.0
    depth_of_discharge: float = 1.0
    extra_capacity_fraction: float = 0.0
    flexible_ratio: float = DEFAULT_FLEXIBLE_WORKLOAD_RATIO

    def __post_init__(self) -> None:
        if self.battery_mwh < 0:
            raise ValueError(f"battery_mwh must be non-negative, got {self.battery_mwh}")
        if not 0.0 < self.depth_of_discharge <= 1.0:
            raise ValueError(
                f"depth_of_discharge must be in (0, 1], got {self.depth_of_discharge}"
            )
        if self.extra_capacity_fraction < 0:
            raise ValueError(
                f"extra_capacity_fraction must be non-negative, "
                f"got {self.extra_capacity_fraction}"
            )
        if not 0.0 <= self.flexible_ratio <= 1.0:
            raise ValueError(
                f"flexible_ratio must be in [0, 1], got {self.flexible_ratio}"
            )

    def battery_spec(self, chemistry: CellChemistry = LFP) -> BatterySpec:
        """The battery installation this design deploys."""
        return BatterySpec(
            capacity_mwh=self.battery_mwh,
            chemistry=chemistry,
            depth_of_discharge=self.depth_of_discharge,
        )

    def constrained_to(self, strategy: Strategy) -> "DesignPoint":
        """This design with dimensions outside ``strategy`` zeroed out."""
        point = self
        if not strategy.uses_battery:
            point = replace(point, battery_mwh=0.0)
        if not strategy.uses_scheduling:
            point = replace(point, extra_capacity_fraction=0.0, flexible_ratio=0.0)
        return point

    def describe(self) -> str:
        """One-line summary used by reports and examples."""
        return (
            f"solar={self.investment.solar_mw:.0f}MW wind={self.investment.wind_mw:.0f}MW "
            f"battery={self.battery_mwh:.0f}MWh@DoD{self.depth_of_discharge:.0%} "
            f"extra-servers={self.extra_capacity_fraction:.0%} FWR={self.flexible_ratio:.0%}"
        )


@dataclass(frozen=True)
class DesignSpace:
    """A grid of candidate designs for exhaustive search (§5: "Carbon
    Explorer exhaustively searches the design space").

    Attributes
    ----------
    solar_mw:
        Candidate solar investments.
    wind_mw:
        Candidate wind investments.
    battery_mwh:
        Candidate battery capacities (include 0 to allow "no battery").
    extra_capacity_fractions:
        Candidate over-provisioning levels (include 0).
    depth_of_discharge:
        Single DoD applied to every candidate battery.
    flexible_ratio:
        Single FWR applied when scheduling is enabled.
    """

    solar_mw: Tuple[float, ...]
    wind_mw: Tuple[float, ...]
    battery_mwh: Tuple[float, ...] = (0.0,)
    extra_capacity_fractions: Tuple[float, ...] = (0.0,)
    depth_of_discharge: float = 1.0
    flexible_ratio: float = DEFAULT_FLEXIBLE_WORKLOAD_RATIO

    def __post_init__(self) -> None:
        for name in ("solar_mw", "wind_mw", "battery_mwh", "extra_capacity_fractions"):
            axis = getattr(self, name)
            if not axis:
                raise DesignSpaceError(f"{name} axis must not be empty")
            # NaN compares false to everything, so it would slip through
            # both the sign and the sort checks below — reject explicitly.
            if any(not math.isfinite(v) for v in axis):
                raise DesignSpaceError(f"{name} axis values must be finite, got {axis}")
            if any(v < 0 for v in axis):
                raise DesignSpaceError(f"{name} axis must be non-negative")
            if sorted(axis) != list(axis):
                raise DesignSpaceError(f"{name} axis must be sorted ascending")
            if len(set(axis)) != len(axis):
                raise DesignSpaceError(f"{name} axis must not repeat values")
        if not math.isfinite(self.depth_of_discharge) or not (
            0.0 < self.depth_of_discharge <= 1.0
        ):
            raise DesignSpaceError(
                f"depth_of_discharge must be in (0, 1], got {self.depth_of_discharge}"
            )
        if not math.isfinite(self.flexible_ratio) or not (
            0.0 <= self.flexible_ratio <= 1.0
        ):
            raise DesignSpaceError(
                f"flexible_ratio must be in [0, 1], got {self.flexible_ratio}"
            )

    def size(self, strategy: Strategy) -> int:
        """Number of grid points after applying strategy constraints."""
        n = len(self.solar_mw) * len(self.wind_mw)
        if strategy.uses_battery:
            n *= len(self.battery_mwh)
        if strategy.uses_scheduling:
            n *= len(self.extra_capacity_fractions)
        return n

    def points(self, strategy: Strategy) -> Iterator[DesignPoint]:
        """Iterate the grid, with dimensions outside ``strategy`` pinned to 0."""
        batteries: Sequence[float] = self.battery_mwh if strategy.uses_battery else (0.0,)
        extras: Sequence[float] = (
            self.extra_capacity_fractions if strategy.uses_scheduling else (0.0,)
        )
        flexible = self.flexible_ratio if strategy.uses_scheduling else 0.0
        for solar, wind, battery, extra in itertools.product(
            self.solar_mw, self.wind_mw, batteries, extras
        ):
            yield DesignPoint(
                investment=RenewableInvestment(solar_mw=solar, wind_mw=wind),
                battery_mwh=battery,
                depth_of_discharge=self.depth_of_discharge,
                extra_capacity_fraction=extra,
                flexible_ratio=flexible,
            )


def default_design_space(
    avg_power_mw: float,
    supports_solar: bool,
    supports_wind: bool,
    n_renewable_steps: int = 5,
    max_renewable_multiple: float = 8.0,
    battery_hours: Tuple[float, ...] = (0.0, 2.0, 5.0, 10.0, 16.0),
    extra_capacity_fractions: Tuple[float, ...] = (0.0, 0.25, 0.5, 1.0),
    depth_of_discharge: float = 1.0,
    flexible_ratio: float = DEFAULT_FLEXIBLE_WORKLOAD_RATIO,
) -> DesignSpace:
    """A sensible bounded design space for a datacenter of a given size.

    Renewable axes run from 0 to ``max_renewable_multiple`` times the average
    datacenter power (nameplate; capacity factors mean several-times-average
    investments are routinely needed).  Battery capacities are expressed in
    hours of average load, matching the paper's "computational hours" axis.
    Axes for resources the local grid does not generate collapse to {0}.
    """
    if avg_power_mw <= 0:
        raise ValueError(f"avg_power_mw must be positive, got {avg_power_mw}")
    if n_renewable_steps < 2:
        raise ValueError(f"n_renewable_steps must be >= 2, got {n_renewable_steps}")
    step = max_renewable_multiple / (n_renewable_steps - 1)
    renewable_axis = tuple(avg_power_mw * step * i for i in range(n_renewable_steps))
    return DesignSpace(
        solar_mw=renewable_axis if supports_solar else (0.0,),
        wind_mw=renewable_axis if supports_wind else (0.0,),
        battery_mwh=tuple(avg_power_mw * h for h in battery_hours),
        extra_capacity_fractions=extra_capacity_fractions,
        depth_of_discharge=depth_of_discharge,
        flexible_ratio=flexible_ratio,
    )
