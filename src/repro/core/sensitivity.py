"""Sensitivity of the carbon-optimal design to embodied-carbon coefficients.

§6: "Carbon Explorer sets parameters based on the best publicly available
data and these parameters can be tuned as better data becomes available."
The paper quotes *ranges* for every embodied coefficient — wind 10-15 and
solar 40-70 gCO2/kWh, batteries 74-134 kgCO2/kWh — so a responsible user
should ask: does the optimal design change if the true coefficient sits at
the other end of its range?

This module answers with a one-at-a-time (OAT) study: each coefficient is
pushed to its published low and high bound while the others stay at the
paper's defaults, the optimizer re-runs, and the report records how much
the optimal total carbon and the chosen design move.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..carbon.embodied import (
    BATTERY_EMBODIED_RANGE_KG_PER_KWH,
    SOLAR_EMBODIED_RANGE_G_PER_KWH,
    WIND_EMBODIED_RANGE_G_PER_KWH,
)
from .design import DesignPoint, DesignSpace, Strategy
from .evaluate import SiteContext
from .optimizer import OptimizationResult, optimize
from ..timeseries.stats import is_exact_zero

#: The published uncertainty range of each tunable coefficient (§5.1).
PAPER_COEFFICIENT_RANGES: Dict[str, Tuple[float, float]] = {
    "wind_g_per_kwh": WIND_EMBODIED_RANGE_G_PER_KWH,
    "solar_g_per_kwh": SOLAR_EMBODIED_RANGE_G_PER_KWH,
    "battery_kg_per_kwh": BATTERY_EMBODIED_RANGE_KG_PER_KWH,
}


@dataclass(frozen=True)
class SensitivityRecord:
    """Optimizer outcome with one coefficient pushed to one bound.

    Attributes
    ----------
    coefficient:
        Name of the perturbed :class:`EmbodiedCarbonModel` field.
    value:
        The value it was set to.
    best_total_tons:
        Total carbon of the re-optimized design.
    best_design:
        The re-optimized design itself.
    design_changed:
        Whether it differs from the baseline optimum.
    """

    coefficient: str
    value: float
    best_total_tons: float
    best_design: DesignPoint
    design_changed: bool


@dataclass(frozen=True)
class SensitivityReport:
    """Full OAT study around the paper's default coefficients."""

    baseline: OptimizationResult
    records: Tuple[SensitivityRecord, ...]

    def max_total_swing(self) -> float:
        """Largest relative change in optimal total carbon across the study."""
        base = self.baseline.best.total_tons
        if is_exact_zero(base):
            raise ValueError("baseline total carbon is zero; swing undefined")
        return max(
            abs(record.best_total_tons - base) / base for record in self.records
        )

    def robust_design(self) -> bool:
        """``True`` if no coefficient bound changes the chosen design."""
        return not any(record.design_changed for record in self.records)


def sensitivity_analysis(
    context: SiteContext,
    space: DesignSpace,
    strategy: Strategy,
    ranges: Optional[Dict[str, Tuple[float, float]]] = None,
) -> SensitivityReport:
    """Run the one-at-a-time coefficient study for one site and strategy.

    Parameters
    ----------
    context:
        Site under study (its embodied model provides the defaults).
    space, strategy:
        Passed through to :func:`repro.core.optimizer.optimize`.
    ranges:
        Coefficient name -> (low, high); defaults to the paper's ranges.
    """
    if ranges is None:
        ranges = PAPER_COEFFICIENT_RANGES
    if not ranges:
        raise ValueError("ranges must not be empty")
    base_model = context.embodied
    for name in ranges:
        if not hasattr(base_model, name):
            raise ValueError(f"unknown embodied coefficient {name!r}")

    baseline = optimize(context, space, strategy)
    records = []
    for name, (low, high) in ranges.items():
        if low > high:
            raise ValueError(f"{name}: low bound {low} exceeds high bound {high}")
        for value in (low, high):
            model = dataclasses.replace(base_model, **{name: value})
            perturbed_context = dataclasses.replace(context, embodied=model)
            result = optimize(perturbed_context, space, strategy)
            records.append(
                SensitivityRecord(
                    coefficient=name,
                    value=value,
                    best_total_tons=result.best.total_tons,
                    best_design=result.best.design,
                    design_changed=result.best.design != baseline.best.design,
                )
            )
    return SensitivityReport(baseline=baseline, records=tuple(records))
