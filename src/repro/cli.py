"""Command-line interface: ``python -m repro <command> ...``.

Wraps the library's main analyses for shell use:

* ``coverage``   — 24/7 coverage of an investment at a site (Fig. 7)
* ``battery``    — battery hours needed for 100% coverage (Fig. 9)
* ``schedule``   — greedy CAS benefit at a site (Figs. 11/12)
* ``optimize``   — carbon-optimal design per strategy (Fig. 15)
* ``rank``       — rank all thirteen sites by optimal footprint
* ``scenarios``  — grid-mix / Net-Zero / 24-7 intensity summary (Fig. 6)
* ``gap``        — annual vs monthly vs hourly matching (§3.2)
* ``stats``      — run a small instrumented sweep, print trace + metrics
* ``journal``    — inspect checkpoint journals (fingerprint, progress,
  resumability verdict)
* ``export-grid``   — write a balancing authority's year as EIA-style CSV
* ``export-demand`` — write a site's demand trace as CSV
* ``lint``       — static invariant checks over the source tree
  (also available standalone as ``python -m repro.lint``)

Every command additionally accepts the observability flags ``--log-level``
(console logging for the ``repro.*`` namespace), ``--trace-out FILE``
(record spans, write a span-tree JSON — or Chrome ``trace_event`` JSON
when the filename contains ``chrome``), ``--metrics-out FILE``
(record counters/histograms, write a JSON snapshot), and
``--metrics-prom FILE`` (write a Prometheus text-format exposition,
atomically, on exit).

The sweep commands further accept ``--metrics-port PORT`` (serve live
Prometheus ``/metrics`` over HTTP while the command runs; ``0`` picks a
free port) and ``--events-out FILE`` (stream the sweep's lifecycle
events — ``sweep_started``, ``chunk_completed``, ``frontier_updated``,
... — to a JSONL file as they happen).

The sweep commands (``optimize``, ``rank``, ``stats``) also accept the
resilience flags ``--checkpoint FILE`` (journal completed chunks as the
sweep runs), ``--resume`` (skip chunks already journaled by a previous
interrupted run), ``--max-retries N`` and ``--chunk-timeout S`` (parallel
fault tolerance), and ``--fault-plan SPEC`` (deterministic fault
injection for testing, e.g. ``kill=0;delay=1:0.5;corrupt=2``).

``rank`` runs the whole fleet through one shared worker pool
(:func:`repro.core.sweep_fleet`): every site is an isolated fault
domain, ``--deadline SECONDS`` bounds the fleet's wall clock (unfinished
sites report ``deadline_exceeded`` with partial results), ``--stream``
prints frontier/quarantine/deadline events live as JSON lines, and
``--site-fault-plan SPEC`` injects site-scoped faults (e.g.
``UT:kill@0.5;OR:shm;attempts=1``).  A Ctrl-C prints the partial rank
table for the sites that finished before exiting 130.

Every command prints a plain-text table and exits 0 on success; argument
errors exit 2 (argparse) and domain errors exit 1 with a message on
stderr.  An interrupted checkpointed sweep exits 130 after flushing the
journal and printing how to ``--resume``.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import math
import os
import sys
import threading
from typing import Dict, Iterator, List, Optional, Sequence

from .battery import BatterySpec
from .carbon import SupplyScenario, matching_gap
from .core import (
    CarbonExplorer,
    FleetInterrupted,
    SiteSweep,
    Strategy,
    prepare_fleet,
    sweep_fleet,
)
from .core.optimizer import optimize_all_strategies, strategy_checkpoint_path
from .resilience import FaultPlan, FleetFaultPlan, SweepInterrupted, inspect_journal
from .resilience.checkpoint import sweep_journal_path
from .datacenter import SITE_ORDER
from .grid import RenewableInvestment, generate_grid_dataset
from .io import write_grid_csv, write_trace_csv
from .lint.cli import add_lint_arguments, run_from_args as run_lint_from_args
from .obs import (
    JsonlSink,
    ProgressTicker,
    SweepEvents,
    configure_logging,
    disable_metrics,
    disable_tracing,
    enable_metrics,
    enable_tracing,
    metrics_enabled,
    render_metrics,
    render_trace,
    reset_metrics,
    reset_tracing,
    save_metrics,
    save_prometheus,
    save_trace,
    start_metrics_server,
    tracing_enabled,
)
from .reporting import format_table, percent

_STRATEGY_BY_NAME = {
    "renewables": Strategy.RENEWABLES_ONLY,
    "battery": Strategy.RENEWABLES_BATTERY,
    "cas": Strategy.RENEWABLES_CAS,
    "all": Strategy.RENEWABLES_BATTERY_CAS,
}


def _explorer(args: argparse.Namespace) -> CarbonExplorer:
    return CarbonExplorer(args.state, year=args.year, seed=args.seed)


def _investment(args: argparse.Namespace, explorer: CarbonExplorer) -> RenewableInvestment:
    if args.solar is None and args.wind is None:
        return explorer.existing_investment()
    return RenewableInvestment(solar_mw=args.solar or 0.0, wind_mw=args.wind or 0.0)


def _obs_parent() -> argparse.ArgumentParser:
    """Shared observability flags, attached to every subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default=None,
        help="enable console logging for the repro.* namespace",
    )
    group.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="record spans; write span-tree JSON (Chrome trace_event "
        "format if the filename contains 'chrome')",
    )
    group.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="record metrics; write a JSON snapshot",
    )
    group.add_argument(
        "--metrics-prom",
        metavar="FILE",
        default=None,
        help="record metrics; write a Prometheus text-format exposition "
        "(atomically, for the node-exporter textfile collector)",
    )
    return parent


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """Live-telemetry flags for the sweep commands (optimize/rank/stats)."""
    group = parser.add_argument_group("telemetry")
    group.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live Prometheus metrics on http://127.0.0.1:PORT/metrics "
        "while the command runs (0 picks a free port, printed on stderr)",
    )
    group.add_argument(
        "--events-out",
        metavar="FILE",
        default=None,
        help="stream sweep lifecycle events (sweep_started, chunk_completed, "
        "frontier_updated, ...) to FILE as JSON lines while the sweep runs",
    )


def _enable_collectors(trace: bool, metrics: bool) -> None:
    """Reset-and-enable the requested collectors.

    One invocation = one dataset: prior in-process spans/metrics are
    cleared so the files written at exit cover exactly this run.  Shared
    by the flag-driven wiring in :func:`_obs_session` and the
    force-enabled ``stats`` command.
    """
    if trace:
        reset_tracing()
        enable_tracing()
    if metrics:
        reset_metrics()
        enable_metrics()


@contextlib.contextmanager
def _obs_session(args: argparse.Namespace) -> Iterator[None]:
    """Wire the shared observability flags around a command invocation.

    ``--log-level`` attaches a console handler to the ``repro`` logger;
    ``--trace-out`` / ``--metrics-out`` / ``--metrics-prom`` enable the
    respective collectors and write their files when the command finishes
    — including on domain errors, so a failed run can still be inspected.
    ``--metrics-port`` serves live ``/metrics`` for the duration of the
    command; ``--events-out`` opens a :class:`~repro.obs.JsonlSink` on a
    fresh :class:`~repro.obs.SweepEvents` bus, published to the sweep
    handlers as ``args.events_bus``.
    """
    if getattr(args, "log_level", None):
        configure_logging(args.log_level)
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    metrics_prom = getattr(args, "metrics_prom", None)
    metrics_port = getattr(args, "metrics_port", None)
    events_out = getattr(args, "events_out", None)
    want_metrics = bool(metrics_out or metrics_prom or metrics_port is not None)
    _enable_collectors(
        trace=bool(trace_out) and not tracing_enabled(),
        metrics=want_metrics and not metrics_enabled(),
    )
    server = None
    sink = None
    args.events_bus = None
    if metrics_port is not None:
        server = start_metrics_server(port=metrics_port)
        print(f"serving metrics on {server.url}", file=sys.stderr)
    if events_out:
        sink = JsonlSink(events_out)
        args.events_bus = SweepEvents()
        args.events_bus.subscribe(sink)
    try:
        yield
    finally:
        if args.events_bus is not None:
            args.events_bus.close()
        if sink is not None:
            sink.close()
        if server is not None:
            server.close()
        if trace_out:
            save_trace(trace_out)
        if metrics_out:
            save_metrics(metrics_out)
        if metrics_prom:
            save_prometheus(metrics_prom)


def _add_site_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("state", choices=SITE_ORDER, help="Table-1 site code")
    parser.add_argument("--year", type=int, default=2020, help="simulated year")
    parser.add_argument("--seed", type=int, default=0, help="weather/demand seed")


def _add_workers_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sweep (1 = in-process serial)",
    )
    parser.add_argument(
        "--no-shm",
        action="store_true",
        help="ship full pickled contexts to sweep workers instead of the "
        "shared-memory trace plane (escape hatch for platforms without "
        "POSIX shared memory; results are identical either way)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="tensorize sweep chunks of at least N designs into one "
        "(design x hour) kernel call (results are bitwise-identical to "
        "the default per-design evaluation; try a few hundred)",
    )


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared fault-tolerance / checkpoint flags for the sweep commands."""
    group = parser.add_argument_group("resilience")
    group.add_argument(
        "--checkpoint",
        metavar="FILE",
        default=None,
        help="journal completed sweep chunks to FILE as the sweep runs",
    )
    group.add_argument(
        "--resume",
        action="store_true",
        help="skip chunks already journaled in --checkpoint by a prior run",
    )
    group.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retries per failed parallel chunk before serial fallback",
    )
    group.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fail outstanding chunks if none completes within SECONDS",
    )
    group.add_argument(
        "--fault-plan",
        metavar="SPEC",
        default=None,
        help="deterministic fault injection for testing, e.g. "
        "'kill=0;delay=1:0.5;corrupt=2;attempts=1'",
    )


def _resilience_kwargs(args: argparse.Namespace) -> dict:
    """Translate the resilience flags into ``optimize()`` keyword arguments.

    The ``checkpoint`` path is left to each command, which may derive
    per-strategy or per-site paths from the base the user gave.
    """
    kwargs = {
        "max_retries": args.max_retries,
        "chunk_timeout": args.chunk_timeout,
        "resume": args.resume,
        "shm": not getattr(args, "no_shm", False),
        "events": getattr(args, "events_bus", None),
        "batch_size": getattr(args, "batch_size", None),
    }
    if args.fault_plan:
        kwargs["faults"] = FaultPlan.from_spec(args.fault_plan)
    return kwargs


def _add_investment_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--solar", type=float, default=None, help="solar MW (default: Meta's regional)"
    )
    parser.add_argument(
        "--wind", type=float, default=None, help="wind MW (default: Meta's regional)"
    )


def cmd_coverage(args: argparse.Namespace) -> None:
    explorer = _explorer(args)
    investment = _investment(args, explorer)
    coverage = explorer.coverage(investment)
    print(
        format_table(
            ["site", "solar MW", "wind MW", "24/7 coverage"],
            [
                (
                    args.state,
                    f"{investment.solar_mw:.0f}",
                    f"{investment.wind_mw:.0f}",
                    percent(coverage),
                )
            ],
        )
    )


def cmd_battery(args: argparse.Namespace) -> None:
    explorer = _explorer(args)
    investment = _investment(args, explorer)
    hours = explorer.battery_hours_for_full_coverage(
        investment, max_hours_of_load=args.max_hours
    )
    mwh = hours * explorer.avg_power_mw if not math.isinf(hours) else float("inf")
    print(
        format_table(
            ["site", "battery for 24/7 (hours)", "battery for 24/7 (MWh)"],
            [
                (
                    args.state,
                    "unreachable" if math.isinf(hours) else f"{hours:.1f}",
                    "unreachable" if math.isinf(hours) else f"{mwh:,.0f}",
                )
            ],
        )
    )


def cmd_schedule(args: argparse.Namespace) -> None:
    explorer = _explorer(args)
    investment = _investment(args, explorer)
    before = explorer.coverage(investment)
    result = explorer.schedule(
        investment,
        capacity_mw=explorer.demand_power.max() * args.capacity_multiple,
        flexible_ratio=args.fwr,
    )
    supply = explorer.renewable_supply(investment)
    after = 1.0 - (
        (result.shifted_demand - supply).positive_part().total()
        / explorer.demand_power.total()
    )
    print(
        format_table(
            ["site", "FWR", "coverage before", "coverage after", "moved MWh", "extra capacity"],
            [
                (
                    args.state,
                    percent(args.fwr, 0),
                    percent(before),
                    percent(after),
                    f"{result.moved_mwh:,.0f}",
                    percent(result.additional_capacity_fraction()),
                )
            ],
        )
    )


def cmd_optimize(args: argparse.Namespace) -> None:
    explorer = _explorer(args)
    space = explorer.default_space(
        n_renewable_steps=args.renewable_steps,
        battery_hours=tuple(args.battery_hours),
        extra_capacity_fractions=tuple(args.extra_capacity),
        flexible_ratio=args.fwr,
    )
    strategies = (
        list(Strategy)
        if args.strategy == "each"
        else [_STRATEGY_BY_NAME[args.strategy]]
    )
    resilience = _resilience_kwargs(args)
    rows = []
    for strategy in strategies:
        if args.checkpoint:
            # One journal per strategy: a single sweep uses the path the
            # user gave, an "each" run derives suffixed per-strategy paths.
            resilience["checkpoint"] = (
                args.checkpoint
                if len(strategies) == 1
                else strategy_checkpoint_path(args.checkpoint, strategy)
            )
        best = explorer.optimize(
            strategy, space, workers=args.workers, **resilience
        ).best
        rows.append(
            (
                strategy.value,
                percent(best.coverage),
                f"{best.operational_tons:,.0f}",
                f"{best.embodied_tons:,.0f}",
                f"{best.total_tons:,.0f}",
                best.design.describe(),
            )
        )
    print(
        format_table(
            ["strategy", "coverage", "op t/yr", "emb t/yr", "total t/yr", "design"],
            rows,
            title=f"Carbon-optimal designs, {args.state}",
        )
    )


#: Event kinds ``rank --stream`` narrates.  ``chunk_completed`` is left
#: out deliberately — hundreds of lines of chunk bookkeeping would bury
#: the frontier improvements the stream exists to surface.
_STREAMED_KINDS = frozenset(
    {
        "sweep_started",
        "frontier_updated",
        "chunk_retried",
        "capacity_stolen",
        "site_quarantined",
        "sweep_degraded",
        "deadline_exceeded",
        "sweep_finished",
    }
)


def _stream_printer(event) -> None:
    """Print one bus event as a greppable, JSON-payload stream line.

    The payload is emitted as JSON (full float precision), so a consumer
    can reconstruct per-site frontiers from the ``frontier_updated``
    lines and diff them against the final table — the fleet-chaos CI
    smoke does exactly that.
    """
    if event.kind not in _STREAMED_KINDS:
        return
    print(
        f"stream {event.kind} {json.dumps(event.payload, sort_keys=True)}",
        flush=True,
    )


def _parse_rank_sites(spec: Optional[str]) -> List[str]:
    if not spec:
        return list(SITE_ORDER)
    sites = [token.strip().upper() for token in spec.split(",") if token.strip()]
    unknown = [site for site in sites if site not in SITE_ORDER]
    if unknown:
        raise ValueError(
            f"unknown site(s) {', '.join(unknown)}; "
            f"choose from {', '.join(SITE_ORDER)}"
        )
    if not sites:
        raise ValueError("--sites needs at least one site code")
    return sites


def _print_rank_table(
    strategy: Strategy,
    explorers: Dict[str, CarbonExplorer],
    sweeps: Sequence[SiteSweep],
    partial: bool = False,
) -> None:
    """The rank table, tolerant of unfinished sites.

    An unfinished site's ``best`` is the best over what it committed — a
    provisional number — so its row carries the non-``complete`` status
    that says how far it got.
    """
    rows = []
    for sweep in sweeps:
        explorer = explorers[sweep.site]
        best = sweep.best
        per_mw = best.total_tons / explorer.avg_power_mw if best else math.inf
        rows.append(
            (
                sweep.site,
                explorer.context.grid.authority.renewable_class.value,
                sweep.status.value,
                f"{per_mw:,.0f}" if best else "--",
                percent(best.coverage) if best else "--",
                per_mw,
            )
        )
    rows.sort(key=lambda r: r[-1])
    title = f"Site ranking, strategy: {strategy.value}"
    if partial:
        title += " (partial: interrupted)"
    print(
        format_table(
            ["site", "region type", "status", "tCO2/yr per MW", "coverage"],
            [r[:-1] for r in rows],
            title=title,
        )
    )


def cmd_rank(args: argparse.Namespace) -> Optional[int]:
    strategy = _STRATEGY_BY_NAME[args.strategy]
    if args.fault_plan:
        raise ValueError(
            "rank sweeps the whole fleet; --fault-plan addresses chunks of "
            "one sweep and is ambiguous across thirteen — use the "
            "site-scoped --site-fault-plan "
            "(e.g. 'UT:kill@0.5;OR:shm;attempts=1') instead"
        )
    faults = (
        FleetFaultPlan.from_spec(args.site_fault_plan)
        if args.site_fault_plan
        else None
    )
    if faults is not None and args.workers < 2:
        print(
            "note: --site-fault-plan fires in pool workers; "
            "with --workers 1 the sweep runs in-process and injects nothing",
            file=sys.stderr,
        )
    sites = _parse_rank_sites(args.sites)
    explorers: Dict[str, CarbonExplorer] = {}
    fleet_sites = []
    for state in sites:
        explorer = CarbonExplorer(state, year=args.year, seed=args.seed)
        space = explorer.default_space(
            n_renewable_steps=4,
            battery_hours=(0.0, 2.0, 5.0, 10.0, 16.0),
            extra_capacity_fractions=(0.0, 0.5),
        )
        explorers[state] = explorer
        fleet_sites.append((state, explorer.context, space))

    bus = args.events_bus
    try:
        if args.stream:
            # Streaming consumes the engine's results() iterator on a
            # printer thread (the push-subscriber path stays available to
            # other consumers, e.g. --events-out).  The iterator ends by
            # itself when the sweep finishes — including on interrupts —
            # so the join below never hangs.
            if bus is None:
                bus = SweepEvents()
            handle = prepare_fleet(
                fleet_sites,
                strategy,
                workers=args.workers,
                deadline_s=args.deadline,
                max_retries=args.max_retries,
                chunk_timeout=args.chunk_timeout,
                checkpoint=args.checkpoint,
                resume=args.resume,
                faults=faults,
                shm=not args.no_shm,
                events=bus,
                batch_size=args.batch_size,
                steal=not args.no_steal,
            )
            printer = threading.Thread(
                target=lambda: [_stream_printer(e) for e in handle.results()],
                name="rank-stream-printer",
            )
            printer.start()
            try:
                fleet = handle.run()
            finally:
                # All stream lines land before the rank table prints.
                printer.join()
        else:
            fleet = sweep_fleet(
                fleet_sites,
                strategy,
                workers=args.workers,
                deadline_s=args.deadline,
                max_retries=args.max_retries,
                chunk_timeout=args.chunk_timeout,
                checkpoint=args.checkpoint,
                resume=args.resume,
                faults=faults,
                shm=not args.no_shm,
                events=bus,
                batch_size=args.batch_size,
                steal=not args.no_steal,
            )
    except FleetInterrupted as interrupted:  # repro-lint: disable=RL006 — process boundary: partial table + exit code 130
        _print_rank_table(strategy, explorers, interrupted.completed, partial=True)
        hint = (
            f"; journals under {interrupted.checkpoint}.<site> resume with "
            "--resume"
            if interrupted.checkpoint
            else "; re-run with --checkpoint to make interrupts resumable"
        )
        print(
            f"interrupted: {len(interrupted.completed)}/{len(sites)} sites "
            f"finished ({interrupted.strategy}){hint}",
            file=sys.stderr,
        )
        return 130
    _print_rank_table(strategy, explorers, fleet.sites)
    if args.deadline is not None:
        unfinished = sum(1 for s in fleet.sites if s.result is None)
        print(
            f"fleet finished in {fleet.elapsed_s:.1f}s of the "
            f"{args.deadline:.1f}s budget"
            + (f"; {unfinished} site(s) cut off" if unfinished else ""),
            file=sys.stderr,
        )
    return None


def cmd_scenarios(args: argparse.Namespace) -> None:
    explorer = _explorer(args)
    investment = _investment(args, explorer)
    battery = explorer.simulate_battery(
        investment, BatterySpec(args.battery_hours_247 * explorer.avg_power_mw)
    )
    series = {
        "grid mix": explorer.scenario_intensity(SupplyScenario.GRID_MIX, investment),
        "net zero": explorer.scenario_intensity(SupplyScenario.NET_ZERO, investment),
        "24/7": explorer.scenario_intensity(
            SupplyScenario.CARBON_FREE_247, investment, residual_import=battery.grid_import
        ),
    }
    rows = [
        (name, f"{s.mean():.1f}", f"{s.max():.1f}")
        for name, s in series.items()
    ]
    print(
        format_table(
            ["scenario", "mean gCO2/kWh", "max gCO2/kWh"],
            rows,
            title=f"Supply-scenario intensity, {args.state}",
        )
    )


def cmd_gap(args: argparse.Namespace) -> None:
    explorer = _explorer(args)
    investment = _investment(args, explorer)
    gap = matching_gap(explorer.demand_power, explorer.renewable_supply(investment))
    print(
        format_table(
            ["matching granularity", "matched fraction"],
            [
                ("annual (Net Zero)", percent(gap.annual_fraction)),
                ("monthly", percent(gap.monthly_fraction)),
                ("hourly (24/7 CFE)", percent(gap.hourly_fraction)),
            ],
            title=f"REC matching gap, {args.state}",
        )
    )


def cmd_stats(args: argparse.Namespace) -> None:
    """Run a small instrumented sweep and print the span/metrics report.

    Tracing and metrics are force-enabled for the run (``--trace-out`` /
    ``--metrics-out`` still control whether files are written); prior
    in-process observability data is cleared so the report covers exactly
    this sweep.
    """
    was_tracing = tracing_enabled()
    was_metrics = metrics_enabled()
    _enable_collectors(trace=True, metrics=True)
    try:
        explorer = _explorer(args)
        space = explorer.default_space(
            n_renewable_steps=args.renewable_steps,
            battery_hours=tuple(args.battery_hours),
            extra_capacity_fractions=tuple(args.extra_capacity),
        )
        ticker = ProgressTicker()
        resilience = _resilience_kwargs(args)
        resilience["checkpoint"] = args.checkpoint
        results = optimize_all_strategies(
            explorer.context, space, progress=ticker, workers=args.workers, **resilience
        )
        ticker.close()
        rows = [
            (
                strategy.value,
                f"{result.n_evaluated}",
                percent(result.best.coverage),
                f"{result.best.total_tons:,.0f}",
            )
            for strategy, result in results.items()
        ]
        print(
            format_table(
                ["strategy", "designs evaluated", "best coverage", "best total t/yr"],
                rows,
                title=f"Instrumented sweep, {args.state}",
            )
        )
        print()
        print(render_trace(max_depth=2))
        print()
        print(render_metrics())
    finally:
        # Leave the enabled flags as the caller had them (the collected
        # data is retained so ``--trace-out``/``--metrics-out`` still
        # write after the handler returns).
        if not was_tracing:
            disable_tracing()
        if not was_metrics:
            disable_metrics()


def _expand_journal_paths(path: str) -> List[str]:
    """Resolve a journal argument to the journal files it names.

    An existing file is reported as-is.  A missing path is treated as a
    checkpoint *base* and expanded to every ``<base>.<label>`` sibling
    the two sweep layouts produce — strategy journals (``optimize``,
    one per :class:`Strategy`) and site journals (``rank``, one per
    fleet site) share the same suffix scheme via
    :func:`repro.resilience.checkpoint.sweep_journal_path`.  If no
    sibling exists either, the original path is returned so the table
    still shows a "damaged: no such file" verdict for it.
    """
    if os.path.exists(path):
        return [path]
    labels = [strategy.name for strategy in Strategy] + list(SITE_ORDER)
    expanded = []
    for label in labels:
        candidate = sweep_journal_path(path, label)
        if candidate is not None and os.path.exists(candidate):
            expanded.append(candidate)
    return expanded or [path]


def cmd_journal(args: argparse.Namespace) -> None:
    """Describe checkpoint journals: identity, progress, resumability.

    Built for the "is this interrupted rank worth resuming?" question:
    point it at ``<base>.<site>`` journals (globs expand in the shell)
    — or at the bare checkpoint base, which expands to whichever layout
    (per-strategy ``optimize`` journals or per-site ``rank`` journals)
    exists on disk — and read the verdict column.  Damaged journals are
    described, not fatal — the command never raises on journal contents.
    """
    rows = []
    for path in (p for arg in args.journals for p in _expand_journal_paths(arg)):
        info = inspect_journal(path)
        rows.append(
            (
                info.path,
                info.fingerprint[:12] if info.fingerprint else "--",
                info.strategy or "--",
                str(info.chunks),
                f"{info.evaluations_done}/{info.total}" if info.total else "--",
                info.verdict(),
            )
        )
    print(
        format_table(
            ["journal", "fingerprint", "strategy", "chunks", "evaluations", "verdict"],
            rows,
            title="Checkpoint journals",
        )
    )


def cmd_report(args: argparse.Namespace) -> None:
    from .core.report import ReportOptions, site_report

    options = ReportOptions(include_optimization=not args.quick)
    print(site_report(args.state, options=options, year=args.year, seed=args.seed))


def cmd_export_grid(args: argparse.Namespace) -> None:
    grid = generate_grid_dataset(args.authority, year=args.year, seed=args.seed)
    write_grid_csv(grid, args.output)
    print(f"wrote {grid.calendar.n_hours} hourly rows for {args.authority} to {args.output}")


def cmd_export_demand(args: argparse.Namespace) -> None:
    explorer = _explorer(args)
    write_trace_csv(explorer.demand_power, args.output)
    print(
        f"wrote {len(explorer.demand_power)} hourly rows for {args.state} to {args.output}"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Carbon Explorer: carbon-aware datacenter design exploration",
    )
    obs = _obs_parent()
    subparsers = parser.add_subparsers(dest="command", required=True)

    p = subparsers.add_parser("coverage", help="24/7 coverage of an investment", parents=[obs])
    _add_site_arguments(p)
    _add_investment_arguments(p)
    p.set_defaults(handler=cmd_coverage)

    p = subparsers.add_parser("battery", help="battery hours for 100%% coverage", parents=[obs])
    _add_site_arguments(p)
    _add_investment_arguments(p)
    p.add_argument("--max-hours", type=float, default=96.0, help="search ceiling")
    p.set_defaults(handler=cmd_battery)

    p = subparsers.add_parser("schedule", help="greedy CAS benefit", parents=[obs])
    _add_site_arguments(p)
    _add_investment_arguments(p)
    p.add_argument("--fwr", type=float, default=0.40, help="flexible workload ratio")
    p.add_argument(
        "--capacity-multiple", type=float, default=1.5, help="P_DC_MAX over peak"
    )
    p.set_defaults(handler=cmd_schedule)

    p = subparsers.add_parser("optimize", help="carbon-optimal design search", parents=[obs])
    _add_site_arguments(p)
    p.add_argument(
        "--strategy",
        choices=list(_STRATEGY_BY_NAME) + ["each"],
        default="each",
        help="solution portfolio ('each' = all four)",
    )
    p.add_argument("--fwr", type=float, default=0.40)
    p.add_argument("--renewable-steps", type=int, default=4)
    p.add_argument(
        "--battery-hours", type=float, nargs="+", default=[0.0, 2.0, 5.0, 10.0, 16.0]
    )
    p.add_argument("--extra-capacity", type=float, nargs="+", default=[0.0, 0.5])
    _add_workers_argument(p)
    _add_resilience_arguments(p)
    _add_telemetry_arguments(p)
    p.set_defaults(handler=cmd_optimize)

    p = subparsers.add_parser(
        "rank",
        help="rank all 13 sites (fleet sweep: fault domains, deadline, streaming)",
        parents=[obs],
    )
    p.add_argument("--strategy", choices=list(_STRATEGY_BY_NAME), default="all")
    p.add_argument("--year", type=int, default=2020)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--sites",
        metavar="LIST",
        default=None,
        help="comma-separated subset of Table-1 sites to rank (default: all 13)",
    )
    p.add_argument(
        "--stream",
        action="store_true",
        help="print frontier/quarantine/deadline events live as "
        "'stream <kind> <json>' lines while the fleet sweeps",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="global wall-clock budget for the whole fleet; unfinished "
        "sites are reported as deadline_exceeded with partial results",
    )
    p.add_argument(
        "--site-fault-plan",
        metavar="SPEC",
        default=None,
        help="site-scoped fault injection for testing, e.g. "
        "'UT:kill@0.5;OR:delay=1.0@0.5;TX:shm;attempts=1;seed=7'",
    )
    p.add_argument(
        "--no-steal",
        action="store_true",
        help="disable cross-site work stealing (a drained site's in-flight "
        "capacity is then NOT re-granted to the largest remaining grid; "
        "results are bitwise-identical either way)",
    )
    _add_workers_argument(p)
    _add_resilience_arguments(p)
    _add_telemetry_arguments(p)
    p.set_defaults(handler=cmd_rank)

    p = subparsers.add_parser("scenarios", help="Fig. 6 intensity summary", parents=[obs])
    _add_site_arguments(p)
    _add_investment_arguments(p)
    p.add_argument(
        "--battery-hours-247",
        type=float,
        default=10.0,
        help="battery (hours of load) behind the 24/7 scenario",
    )
    p.set_defaults(handler=cmd_scenarios)

    p = subparsers.add_parser("gap", help="annual vs hourly matching gap", parents=[obs])
    _add_site_arguments(p)
    _add_investment_arguments(p)
    p.set_defaults(handler=cmd_gap)

    p = subparsers.add_parser("report", help="full site report (all analyses)", parents=[obs])
    _add_site_arguments(p)
    p.add_argument(
        "--quick", action="store_true", help="skip the exhaustive-search section"
    )
    p.set_defaults(handler=cmd_report)

    p = subparsers.add_parser(
        "stats",
        help="small instrumented sweep: span tree + metrics report",
        parents=[obs],
    )
    _add_site_arguments(p)
    p.add_argument(
        "--renewable-steps", type=int, default=2, help="renewable axis resolution"
    )
    p.add_argument("--battery-hours", type=float, nargs="+", default=[0.0, 5.0])
    p.add_argument("--extra-capacity", type=float, nargs="+", default=[0.0])
    _add_workers_argument(p)
    _add_resilience_arguments(p)
    _add_telemetry_arguments(p)
    p.set_defaults(handler=cmd_stats)

    p = subparsers.add_parser("export-grid", help="write EIA-style grid CSV", parents=[obs])
    p.add_argument("authority", help="balancing authority code, e.g. PACE")
    p.add_argument("output", help="destination CSV path")
    p.add_argument("--year", type=int, default=2020)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(handler=cmd_export_grid)

    p = subparsers.add_parser("export-demand", help="write a site demand CSV", parents=[obs])
    _add_site_arguments(p)
    p.add_argument("output", help="destination CSV path")
    p.set_defaults(handler=cmd_export_demand)

    p = subparsers.add_parser(
        "journal",
        help="inspect checkpoint journals: fingerprint, progress, verdict",
        description="Summarize --checkpoint journal files: schema version, "
        "sweep fingerprint, chunks and evaluations journaled, and a "
        "resumability verdict (resumable / complete / empty / damaged).",
        parents=[obs],
    )
    p.add_argument(
        "journals",
        nargs="+",
        metavar="FILE",
        help="journal path(s) written by --checkpoint, or a bare checkpoint "
        "base — expanded to <base>.<strategy> (optimize layout) and "
        "<base>.<site> (rank layout) siblings that exist on disk",
    )
    p.set_defaults(handler=cmd_journal)

    p = subparsers.add_parser(
        "lint",
        help="run the AST invariant checker over the source tree",
        description="Check the repro invariants (determinism, shm lifecycle, "
        "kernel purity, metric names, float equality, exception hygiene, "
        "event names) statically; exits 1 when findings are reported.",
        parents=[obs],
    )
    add_lint_arguments(p)
    p.set_defaults(handler=run_lint_from_args)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Observability wiring lives in :func:`_obs_session`.  Handlers may
    return an integer exit code (``lint`` returns 1 on findings);
    ``None`` means success.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        with _obs_session(args):
            try:
                code = args.handler(args)
            except SweepInterrupted as interrupted:  # repro-lint: disable=RL006 — process boundary: convert to exit code 130
                print(
                    f"interrupted: {interrupted.done}/{interrupted.total} evaluations "
                    f"({interrupted.strategy}) journaled to {interrupted.checkpoint}; "
                    f"re-run with --resume to continue from there",
                    file=sys.stderr,
                )
                return 130
            except KeyboardInterrupt:  # repro-lint: disable=RL006 — process boundary: convert to exit code 130
                print("interrupted (no --checkpoint, progress not saved)", file=sys.stderr)
                return 130
            except (ValueError, KeyError) as error:
                print(f"error: {error}", file=sys.stderr)
                return 1
    except OSError as error:
        # Malformed output paths (--metrics-out, --events-out, a taken
        # --metrics-port, ...) must fail loudly but cleanly: a clear
        # message and a non-zero exit, not a traceback and not a swallow.
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0 if code is None else code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
