"""Retry policy for chunked sweeps: bounded retries with exponential backoff.

A :class:`RetryPolicy` describes how the optimizer reacts to a failed sweep
chunk (a crashed worker, a poisoned process pool, a stalled or corrupt
chunk): the chunk is re-submitted up to ``max_retries`` times, with an
exponentially growing pause between rounds, and after the budget is
exhausted the chunk is re-evaluated serially in-process — a sweep always
completes (see :mod:`repro.core.optimizer`).

The backoff is deterministic (no jitter): the library is seeded end-to-end
and retried work is bitwise-identical to first-attempt work, so
randomizing the pause would buy nothing and cost reproducibility of
timing-sensitive tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How failed sweep chunks are retried.

    Attributes
    ----------
    max_retries:
        Re-submission rounds after the first attempt (0 = never retry,
        degrade straight to serial re-evaluation).
    backoff_base_s:
        Pause before the first retry round, seconds.
    backoff_factor:
        Multiplier applied to the pause for each further round.
    backoff_max_s:
        Upper bound on any single pause, seconds.
    chunk_timeout_s:
        Stall detector: if no chunk completes within this many seconds,
        every outstanding chunk of the round is declared failed and
        retried.  ``None`` disables the detector.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.1
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    chunk_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0:
            raise ValueError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max_s < 0:
            raise ValueError(f"backoff_max_s must be >= 0, got {self.backoff_max_s}")
        if self.chunk_timeout_s is not None and self.chunk_timeout_s <= 0:
            raise ValueError(
                f"chunk_timeout_s must be positive or None, got {self.chunk_timeout_s}"
            )

    def backoff_s(self, retry_round: int) -> float:
        """Pause before retry round ``retry_round`` (1-based), seconds."""
        if retry_round < 1:
            raise ValueError(f"retry_round must be >= 1, got {retry_round}")
        return min(
            self.backoff_base_s * self.backoff_factor ** (retry_round - 1),
            self.backoff_max_s,
        )
