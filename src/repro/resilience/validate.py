"""Shape validation of worker chunk results before writeback.

A worker returns ``(start, evaluations, metrics)`` per chunk.  Anything a
worker sends back crosses a pickle boundary, and a corrupted or truncated
payload written into the result grid would silently poison the sweep's
argmin — so the parent validates the shape *before* committing: correct
start index, correct length, every element a real
:class:`~repro.core.evaluate.DesignEvaluation` with a finite objective.
A failed check raises :class:`ChunkValidationError`, which the optimizer
treats exactly like a crashed worker (retry, then serial fallback).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from ..core.evaluate import DesignEvaluation

#: A validated worker payload: start index, evaluations, metrics snapshot.
ChunkResult = Tuple[int, List[DesignEvaluation], Optional[Dict[str, Any]]]


class ChunkValidationError(RuntimeError):
    """A worker's chunk payload failed shape validation."""


def validate_chunk_result(
    payload: Any, expected_start: int, expected_count: int
) -> ChunkResult:
    """Check one worker payload and return it typed, or raise.

    Raises
    ------
    ChunkValidationError
        If the payload is not a 3-tuple, the start index or evaluation
        count disagrees with what was submitted, any element is not a
        :class:`DesignEvaluation`, or any objective value is non-finite.
    """
    if not isinstance(payload, tuple) or len(payload) != 3:
        raise ChunkValidationError(
            f"chunk [{expected_start}, {expected_start + expected_count}): "
            f"payload is {type(payload).__name__}, expected a 3-tuple"
        )
    start, evaluations, metrics = payload
    if start != expected_start:
        raise ChunkValidationError(
            f"chunk [{expected_start}, {expected_start + expected_count}): "
            f"worker reported start {start!r}"
        )
    if not isinstance(evaluations, list) or len(evaluations) != expected_count:
        got = len(evaluations) if isinstance(evaluations, list) else type(evaluations).__name__
        raise ChunkValidationError(
            f"chunk [{expected_start}, {expected_start + expected_count}): "
            f"expected {expected_count} evaluations, got {got}"
        )
    for offset, evaluation in enumerate(evaluations):
        if not isinstance(evaluation, DesignEvaluation):
            raise ChunkValidationError(
                f"chunk [{expected_start}, {expected_start + expected_count}): "
                f"element {offset} is {type(evaluation).__name__}, "
                f"not a DesignEvaluation"
            )
        if not math.isfinite(evaluation.total_tons):
            raise ChunkValidationError(
                f"chunk [{expected_start}, {expected_start + expected_count}): "
                f"element {offset} has non-finite total carbon "
                f"{evaluation.total_tons!r}"
            )
    if metrics is not None and not isinstance(metrics, dict):
        raise ChunkValidationError(
            f"chunk [{expected_start}, {expected_start + expected_count}): "
            f"metrics snapshot is {type(metrics).__name__}, expected dict or None"
        )
    return start, evaluations, metrics
