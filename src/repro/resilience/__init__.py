"""Fault tolerance for design sweeps: retries, checkpoints, fault injection.

Production-scale sweeps run minutes-to-hours across worker pools and must
survive worker crashes, be interruptible, and resume without redoing
work.  This package supplies the three pieces the optimizer threads
through :mod:`repro.core.optimizer`:

* :mod:`~repro.resilience.retry` — :class:`RetryPolicy`: chunk-level
  retry with exponential backoff, a per-round stall timeout, and serial
  in-process fallback so a sweep always completes;
* :mod:`~repro.resilience.checkpoint` — an append-only JSONL journal of
  completed chunks with SHA-256 fingerprint validation
  (:func:`sweep_fingerprint`), exact float round-tripping, and tolerant
  recovery of crash-truncated files;
* :mod:`~repro.resilience.faults` — :class:`FaultPlan`: seeded,
  deterministic worker kills / delays / payload corruption that tests and
  CI use to prove the above end-to-end.

Counters surfaced through :mod:`repro.obs`: ``chunk_retries``,
``chunk_failures``, ``serial_fallbacks``, ``checkpoint_chunks_written``,
``checkpoint_chunks_skipped``, ``checkpoint_designs_skipped``.
"""

from .checkpoint import (
    JOURNAL_VERSION,
    CheckpointError,
    CheckpointJournal,
    CheckpointMismatchError,
    JournalHeader,
    JournalInfo,
    SweepInterrupted,
    inspect_journal,
    load_resumable_chunks,
    sweep_fingerprint,
)
from .domains import (
    AdaptiveChunkTimeout,
    FleetFaultPlan,
    SiteFaultPolicy,
)
from .faults import (
    FaultAction,
    FaultKind,
    FaultPlan,
    corrupt_payload,
    execute_pre_fault,
)
from .retry import RetryPolicy
from .serialize import (
    design_from_json,
    design_to_json,
    evaluation_from_json,
    evaluation_to_json,
)
from .validate import ChunkResult, ChunkValidationError, validate_chunk_result

__all__ = [
    "JOURNAL_VERSION",
    "CheckpointError",
    "CheckpointJournal",
    "CheckpointMismatchError",
    "JournalHeader",
    "JournalInfo",
    "SweepInterrupted",
    "inspect_journal",
    "load_resumable_chunks",
    "sweep_fingerprint",
    "AdaptiveChunkTimeout",
    "FleetFaultPlan",
    "SiteFaultPolicy",
    "FaultAction",
    "FaultKind",
    "FaultPlan",
    "corrupt_payload",
    "execute_pre_fault",
    "RetryPolicy",
    "design_from_json",
    "design_to_json",
    "evaluation_from_json",
    "evaluation_to_json",
    "ChunkResult",
    "ChunkValidationError",
    "validate_chunk_result",
]
