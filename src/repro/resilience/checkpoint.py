"""Checkpoint journal: append-only chunk results with fingerprint validation.

The optimizer journals every completed sweep chunk to a JSON-lines file as
it finishes.  Line 1 is a header binding the journal to one exact sweep —
a SHA-256 *fingerprint* of the site context's hourly traces, the design
space axes, and the strategy — and every further line is one completed
chunk: its starting grid index plus its evaluations, serialized so floats
round-trip bit-for-bit (:mod:`repro.resilience.serialize`).

Resume reads the journal back, refuses a mismatched fingerprint
(:class:`CheckpointMismatchError` — resuming against a different site,
seed, space, or strategy would silently splice incompatible results), and
pre-fills the result grid so only unjournaled indices are re-evaluated.
A truncated final line — the signature of a crash mid-append — is
tolerated and dropped; damage anywhere else raises
:class:`CheckpointError`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import IO, Any, Dict, List, Optional, Tuple, Union

from ..core.design import DesignSpace, Strategy
from ..core.evaluate import DesignEvaluation, SiteContext
from ..obs import get_logger
from ..obs.events import SweepEvents
from .serialize import evaluation_from_json, evaluation_to_json

_log = get_logger("resilience.checkpoint")

PathLike = Union[str, "os.PathLike[str]"]

#: Journal schema version (bumped on incompatible format changes).
JOURNAL_VERSION = 1


def sweep_journal_path(
    checkpoint: Optional[PathLike], label: str
) -> Optional[str]:
    """Derive one sweep's journal path from a base checkpoint path.

    The single suffix scheme behind every journal layout: a label —
    a strategy name for per-strategy sweeps (``optimize_all_strategies``,
    ``repro optimize --strategy all``) or a site key for fleet sweeps
    (``sweep_fleet``, ``repro rank``) — is lowercased and appended as
    ``<base>.<label>``.  ``None`` passes through, so callers can thread an
    optional checkpoint argument without branching.  Because both layouts
    share this helper (via ``strategy_checkpoint_path`` and
    ``fleet_checkpoint_path``), a fleet journal resumes under a single-site
    sweep and vice versa.
    """
    if checkpoint is None:
        return None
    return f"{checkpoint}.{label.lower()}"


class CheckpointError(ValueError):
    """A checkpoint journal is structurally damaged or unreadable."""


class CheckpointMismatchError(CheckpointError):
    """A journal's fingerprint does not match the sweep being resumed."""


class SweepInterrupted(KeyboardInterrupt):
    """A checkpointed sweep was interrupted; the journal holds partial progress.

    Subclasses :class:`KeyboardInterrupt` so generic ``except Exception``
    handlers cannot swallow it; carries enough state for the CLI to print
    an actionable partial-progress message.
    """

    def __init__(self, checkpoint: str, done: int, total: int, strategy: str) -> None:
        super().__init__()
        self.checkpoint = checkpoint
        self.done = done
        self.total = total
        self.strategy = strategy

    def __str__(self) -> str:
        return (
            f"sweep interrupted: {self.done}/{self.total} evaluations "
            f"({self.strategy}) journaled to {self.checkpoint}"
        )


def _digest(update: "hashlib._Hash", array: Any) -> None:
    update.update(array.tobytes())


def sweep_fingerprint(
    context: SiteContext, space: DesignSpace, strategy: Strategy
) -> str:
    """SHA-256 identity of one sweep: site traces + space axes + strategy.

    Two sweeps share a fingerprint exactly when their journaled chunks are
    interchangeable: same site/year/seed (captured through the hourly
    demand, intensity, solar, and wind traces), same grid axes, same
    strategy.  Anything else must refuse to resume.
    """
    h = hashlib.sha256()
    h.update(f"v{JOURNAL_VERSION}|{context.site_state}|{strategy.name}|".encode())
    _digest(h, context.demand.power.values)
    _digest(h, context.grid_intensity.values)
    _digest(h, context.grid.solar.values)
    _digest(h, context.grid.wind.values)
    axes = {
        "solar_mw": list(space.solar_mw),
        "wind_mw": list(space.wind_mw),
        "battery_mwh": list(space.battery_mwh),
        "extra_capacity_fractions": list(space.extra_capacity_fractions),
        "depth_of_discharge": space.depth_of_discharge,
        "flexible_ratio": space.flexible_ratio,
    }
    h.update(json.dumps(axes, sort_keys=True).encode())
    return h.hexdigest()


@dataclass(frozen=True)
class JournalHeader:
    """The binding line-1 record of a checkpoint journal."""

    version: int
    fingerprint: str
    strategy: str
    total: int

    def as_json(self) -> Dict[str, Any]:
        return {
            "kind": "header",
            "version": self.version,
            "fingerprint": self.fingerprint,
            "strategy": self.strategy,
            "total": self.total,
        }


def _parse_journal(
    path: PathLike,
) -> Tuple[JournalHeader, Dict[int, List[DesignEvaluation]]]:
    """Read a journal file into its header and chunk map.

    Raises :class:`CheckpointError` on structural damage anywhere except a
    truncated final line, which is dropped with a warning (the crash wrote
    half a chunk; that chunk is simply re-evaluated).
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    while lines and lines[-1] == "":
        lines.pop()
    if not lines:
        raise CheckpointError(f"checkpoint {path}: empty file")

    records: List[Dict[str, Any]] = []
    for number, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            if number == len(lines):
                _log.warning(
                    "checkpoint %s: dropping truncated final line %d", path, number
                )
                break
            raise CheckpointError(
                f"checkpoint {path}: line {number} is not valid JSON ({error})"
            ) from None
        if not isinstance(record, dict) or "kind" not in record:
            raise CheckpointError(
                f"checkpoint {path}: line {number} is not a journal record"
            )
        records.append(record)

    if not records or records[0].get("kind") != "header":
        raise CheckpointError(f"checkpoint {path}: missing header line")
    head = records[0]
    try:
        header = JournalHeader(
            version=int(head["version"]),
            fingerprint=str(head["fingerprint"]),
            strategy=str(head["strategy"]),
            total=int(head["total"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(f"checkpoint {path}: damaged header ({error})") from None
    if header.version != JOURNAL_VERSION:
        raise CheckpointError(
            f"checkpoint {path}: journal version {header.version} is not "
            f"supported (expected {JOURNAL_VERSION})"
        )

    chunks: Dict[int, List[DesignEvaluation]] = {}
    for number, record in enumerate(records[1:], start=2):
        if record["kind"] != "chunk":
            raise CheckpointError(
                f"checkpoint {path}: line {number} has unknown kind "
                f"{record['kind']!r}"
            )
        try:
            start = int(record["start"])
            evaluations = [
                evaluation_from_json(item) for item in record["evaluations"]
            ]
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(
                f"checkpoint {path}: line {number} holds a damaged chunk ({error})"
            ) from None
        if start < 0 or start + len(evaluations) > header.total:
            raise CheckpointError(
                f"checkpoint {path}: line {number} chunk [{start}, "
                f"{start + len(evaluations)}) exceeds the sweep total "
                f"{header.total}"
            )
        chunks[start] = evaluations
    return header, chunks


def load_resumable_chunks(
    path: PathLike,
    fingerprint: str,
    strategy: Strategy,
    total: int,
    events: Optional["SweepEvents"] = None,
    site: str = "",
) -> Dict[int, List[DesignEvaluation]]:
    """Journaled chunks safe to splice into the sweep being resumed.

    Returns an empty map when the journal does not exist yet (a first run
    with ``resume=True`` is allowed).  Raises
    :class:`CheckpointMismatchError` when the journal belongs to a
    different sweep, :class:`CheckpointError` on damage.

    ``events``, when given, mirrors every restored journal entry onto the
    bus as a ``chunk_completed`` event tagged ``resumed: true`` (in grid
    order, before the sweep emits any live chunk), so a subscriber sees
    the sweep's complete chunk history whether or not it was interrupted.
    """
    if not os.path.exists(path):
        _log.info("checkpoint %s: no journal yet, starting fresh", path)
        return {}
    header, chunks = _parse_journal(path)
    if header.fingerprint != fingerprint:
        raise CheckpointMismatchError(
            f"checkpoint {path}: fingerprint mismatch — the journal was "
            f"written for a different site/seed/space/strategy "
            f"(journal {header.fingerprint[:12]}…, sweep {fingerprint[:12]}…); "
            f"refusing to resume"
        )
    if header.strategy != strategy.name or header.total != total:
        raise CheckpointMismatchError(
            f"checkpoint {path}: header disagrees with the sweep "
            f"(journal strategy={header.strategy} total={header.total}, "
            f"sweep strategy={strategy.name} total={total})"
        )
    _log.info(
        "checkpoint %s: resuming %d journaled chunks (%d evaluations)",
        path,
        len(chunks),
        sum(len(c) for c in chunks.values()),
    )
    if events is not None:
        for start in sorted(chunks):
            events.emit(
                "chunk_completed",
                site=site,
                strategy=strategy.value,
                start=start,
                count=len(chunks[start]),
                resumed=True,
                journal=str(path),
            )
    return chunks


@dataclass(frozen=True)
class JournalInfo:
    """Inspection summary of one checkpoint journal (``repro journal``).

    ``error`` is set (and the counts zeroed) when the journal is damaged
    beyond the tolerated truncated final line.  ``total`` is the sweep's
    grid size from the header; ``evaluations_done`` counts journaled
    evaluations, so ``complete`` means every grid index is covered and
    the journal is a finished sweep rather than a resumable partial.
    """

    path: str
    version: int = 0
    fingerprint: str = ""
    strategy: str = ""
    total: int = 0
    chunks: int = 0
    evaluations_done: int = 0
    error: Optional[str] = None

    @property
    def complete(self) -> bool:
        """Whether every grid index of the sweep is journaled."""
        return self.error is None and self.total > 0 and self.evaluations_done >= self.total

    @property
    def resumable(self) -> bool:
        """Whether ``--resume`` against this journal would skip work."""
        return self.error is None and 0 < self.evaluations_done < self.total

    def verdict(self) -> str:
        """One-word-ish resumability verdict for the CLI table."""
        if self.error is not None:
            return f"damaged: {self.error}"
        if self.complete:
            return "complete"
        if self.evaluations_done == 0:
            return "empty (header only)"
        return "resumable"


def inspect_journal(path: PathLike) -> JournalInfo:
    """Summarize a journal file without needing its sweep's context.

    Never raises on journal damage — a debugging command must be able to
    describe a broken journal; structural problems land in
    :attr:`JournalInfo.error` instead.  A missing file is reported as
    damage too (``no such file``).
    """
    if not os.path.exists(path):
        return JournalInfo(path=str(path), error="no such file")
    try:
        header, chunks = _parse_journal(path)
    except CheckpointError as error:
        return JournalInfo(path=str(path), error=str(error))
    return JournalInfo(
        path=str(path),
        version=header.version,
        fingerprint=header.fingerprint,
        strategy=header.strategy,
        total=header.total,
        chunks=len(chunks),
        evaluations_done=sum(len(c) for c in chunks.values()),
    )


class CheckpointJournal:
    """Append-only writer for one sweep's checkpoint file.

    Opens lazily.  With ``truncate=True`` (a fresh, non-resumed sweep) any
    existing file is overwritten — appending a second run onto an old
    journal would splice two sweeps together.  With ``truncate=False`` (a
    resumed sweep) the file is opened for append, and the header is only
    written when the file is new or empty.  Each :meth:`append_chunk`
    writes one complete line and flushes it, so a killed process loses at
    most the chunk being written — which the tolerant reader drops on
    resume.
    """

    def __init__(
        self, path: PathLike, header: JournalHeader, truncate: bool = False
    ) -> None:
        self._path = str(path)
        self._header = header
        self._truncate = truncate
        self._handle: Optional[IO[str]] = None
        self.chunks_written = 0
        self.evaluations_written = 0

    @property
    def path(self) -> str:
        """Location of the journal file."""
        return self._path

    def _ensure_open(self) -> IO[str]:
        if self._handle is None:
            parent = os.path.dirname(self._path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            fresh = (
                self._truncate
                or not os.path.exists(self._path)
                or os.path.getsize(self._path) == 0
            )
            self._handle = open(self._path, "w" if self._truncate else "a", encoding="utf-8")
            if fresh:
                self._handle.write(json.dumps(self._header.as_json()) + "\n")
                self._handle.flush()
        return self._handle

    def append_chunk(self, start: int, evaluations: List[DesignEvaluation]) -> None:
        """Journal one completed chunk (flushed before returning)."""
        record = {
            "kind": "chunk",
            "start": start,
            "evaluations": [evaluation_to_json(e) for e in evaluations],
        }
        handle = self._ensure_open()
        handle.write(json.dumps(record) + "\n")
        handle.flush()
        self.chunks_written += 1
        self.evaluations_written += len(evaluations)

    def close(self) -> None:
        """Flush and close the journal (idempotent)."""
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
