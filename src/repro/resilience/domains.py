"""Per-site fault domains: site-scoped fault plans and adaptive timeouts.

The fleet scheduler (:mod:`repro.core.fleet`) sweeps every site of a
multi-site study over one shared worker pool.  For that to be *robust*
rather than merely fast, each site must be an isolated fault domain — a
site whose workers keep dying, whose shared-memory segment cannot be
attached, or whose payloads keep failing validation is quarantined
without taking the other twelve sites down.  This module supplies the
two site-scoped pieces the scheduler threads through:

* :class:`FleetFaultPlan` / :class:`SiteFaultPolicy` — deterministic,
  seeded, *site-scoped* fault injection (per-site kill rates, slow-worker
  delays, payload corruption, shm attach failure) so the isolation is
  chaos-testable end to end.  The chunk-scoped
  :class:`~repro.resilience.faults.FaultPlan` addresses chunks of one
  sweep; a fleet plan addresses ``(site, chunk ordinal, attempt)``
  triples across the whole fleet.
* :class:`AdaptiveChunkTimeout` — an EWMA over observed chunk durations
  that replaces the one-size-fits-all fixed ``chunk_timeout``: the stall
  budget for a chunk is a multiple of what chunks have actually been
  taking, so a fleet mixing fast and slow sites neither false-trips on
  the slow ones nor waits forever on a wedged worker.

Determinism: rate-based fault draws hash ``(seed, site, ordinal,
attempt)`` through a private :class:`random.Random` seeded with a string
(string seeding is stable across processes and interpreter runs, unlike
``hash()``), so the same plan over the same fleet always injects the
same faults.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from random import Random
from typing import Dict, Mapping, Optional

from .faults import FaultAction, FaultKind


@dataclass(frozen=True)
class SiteFaultPolicy:
    """Fault behaviour for one site's chunks.

    Rates are per chunk *attempt* in ``[0, 1]``; one seeded draw per
    attempt is partitioned kill → delay → corrupt, so kill wins when the
    rates overlap.  ``shm_fault`` is not rate-based: a torn or
    unattachable shared-memory segment is a persistent property of the
    site, so it fires on every attempt and the scheduler quarantines the
    site on first sight.
    """

    kill_rate: float = 0.0
    delay_rate: float = 0.0
    delay_s: float = 0.5
    corrupt_rate: float = 0.0
    shm_fault: bool = False

    def __post_init__(self) -> None:
        for name in ("kill_rate", "delay_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")

    def is_empty(self) -> bool:
        """Whether this policy injects no faults at all."""
        return not (
            self.kill_rate or self.delay_rate or self.corrupt_rate or self.shm_fault
        )


@dataclass(frozen=True)
class FleetFaultPlan:
    """A deterministic schedule of site-scoped faults for a fleet sweep.

    ``sites`` maps site keys (state codes) to their
    :class:`SiteFaultPolicy`; sites absent from the map are healthy.  As
    with :class:`~repro.resilience.faults.FaultPlan`, a rate-based fault
    fires only while the chunk's attempt number is below
    ``max_faulted_attempts`` (default 1: fail once, then behave), so
    retried chunks succeed and healthy results stay bitwise-identical to
    a fault-free run.  ``shm_fault`` ignores the attempt gate — a segment
    that cannot be attached stays unattachable.
    """

    sites: Mapping[str, SiteFaultPolicy] = field(default_factory=dict)
    seed: int = 0
    max_faulted_attempts: int = 1

    def __post_init__(self) -> None:
        if self.max_faulted_attempts < 1:
            raise ValueError(
                f"max_faulted_attempts must be >= 1, got {self.max_faulted_attempts}"
            )
        for site, policy in self.sites.items():
            if not isinstance(policy, SiteFaultPolicy):
                raise ValueError(
                    f"site {site!r}: expected a SiteFaultPolicy, "
                    f"got {type(policy).__name__}"
                )

    def is_empty(self) -> bool:
        """Whether this plan injects no faults at all."""
        return all(policy.is_empty() for policy in self.sites.values())

    def action_for(
        self, site: str, chunk_ordinal: int, attempt: int
    ) -> Optional[FaultAction]:
        """The fault for one ``(site, chunk, attempt)``, or ``None``.

        Deterministic: the same arguments always return the same action.
        """
        policy = self.sites.get(site)
        if policy is None:
            return None
        if policy.shm_fault:
            return FaultAction(FaultKind.SHM)
        if attempt >= self.max_faulted_attempts:
            return None
        draw = Random(f"{self.seed}|{site}|{chunk_ordinal}|{attempt}").random()
        if draw < policy.kill_rate:
            return FaultAction(FaultKind.KILL)
        if draw < policy.kill_rate + policy.delay_rate:
            return FaultAction(FaultKind.DELAY, delay_s=policy.delay_s)
        if draw < policy.kill_rate + policy.delay_rate + policy.corrupt_rate:
            return FaultAction(FaultKind.CORRUPT)
        return None

    @classmethod
    def from_spec(cls, spec: str) -> "FleetFaultPlan":
        """Parse a compact CLI spec of site-scoped faults.

        Semicolon-separated clauses.  A site clause is
        ``SITE:kind[=value][@rate]``; repeated clauses for one site merge:

        * ``UT:kill`` — kill every first-attempt chunk of UT (rate 1.0);
        * ``UT:kill@0.25`` — kill a seeded-random quarter of them;
        * ``OR:delay=2.0@0.5`` — delay half of OR's chunks by 2 s;
        * ``NC:corrupt`` — corrupt NC's chunk payloads;
        * ``TX:shm`` — TX's shared segment cannot be attached.

        Global clauses: ``attempts=N`` sets ``max_faulted_attempts``,
        ``seed=N`` the draw seed.
        """
        policies: Dict[str, SiteFaultPolicy] = {}
        attempts = 1
        seed = 0
        for clause in filter(None, (part.strip() for part in spec.split(";"))):
            try:
                if ":" not in clause:
                    key, _, value = clause.partition("=")
                    key = key.strip()
                    if key == "attempts":
                        attempts = int(value)
                    elif key == "seed":
                        seed = int(value)
                    else:
                        raise ValueError(
                            f"expected SITE:kind or attempts=/seed=, got {key!r}"
                        )
                    continue
                site, _, fault = clause.partition(":")
                site = site.strip()
                if not site:
                    raise ValueError("empty site code")
                body, _, rate_text = fault.partition("@")
                rate = float(rate_text) if rate_text else 1.0
                kind, _, value_text = body.partition("=")
                kind = kind.strip()
                policy = policies.get(site, SiteFaultPolicy())
                if kind == "kill":
                    policy = dataclasses.replace(policy, kill_rate=rate)
                elif kind == "delay":
                    delay_s = float(value_text) if value_text else 0.5
                    policy = dataclasses.replace(
                        policy, delay_rate=rate, delay_s=delay_s
                    )
                elif kind == "corrupt":
                    policy = dataclasses.replace(policy, corrupt_rate=rate)
                elif kind == "shm":
                    policy = dataclasses.replace(policy, shm_fault=True)
                else:
                    raise ValueError(
                        f"unknown fault kind {kind!r} "
                        f"(expected kill, delay, corrupt, or shm)"
                    )
                policies[site] = policy
            except ValueError as error:
                raise ValueError(f"bad fleet fault clause {clause!r}: {error}") from None
        return cls(sites=policies, seed=seed, max_faulted_attempts=attempts)


class AdaptiveChunkTimeout:
    """EWMA-driven per-chunk stall budget.

    Replaces a fixed ``chunk_timeout``: every completed chunk's duration
    feeds an exponentially weighted moving average, and the budget for an
    outstanding chunk is ``max(floor_s, multiplier * ewma)`` (optionally
    capped).  Until the first observation the budget is the ``initial_s``
    seed — ``None`` disables stall detection entirely until real
    durations exist, at which point the average takes over.

    The multiplier is deliberately generous (default 8x): the budget is a
    wedged-worker detector, not a latency SLO, and a false trip costs a
    redundant re-evaluation while a missed one costs the whole budget of
    the fleet's deadline.
    """

    def __init__(
        self,
        initial_s: Optional[float] = None,
        alpha: float = 0.25,
        multiplier: float = 8.0,
        floor_s: float = 0.25,
        cap_s: Optional[float] = None,
    ) -> None:
        if initial_s is not None and initial_s <= 0:
            raise ValueError(f"initial_s must be positive or None, got {initial_s}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if floor_s < 0:
            raise ValueError(f"floor_s must be >= 0, got {floor_s}")
        if cap_s is not None and cap_s <= 0:
            raise ValueError(f"cap_s must be positive or None, got {cap_s}")
        self._initial_s = initial_s
        self._alpha = alpha
        self._multiplier = multiplier
        self._floor_s = floor_s
        self._cap_s = cap_s
        self._ewma: Optional[float] = None
        self.observations = 0

    def observe(self, duration_s: float) -> None:
        """Feed one completed chunk's wall-clock duration into the average."""
        if duration_s < 0:
            raise ValueError(f"duration_s must be >= 0, got {duration_s}")
        if self._ewma is None:
            self._ewma = duration_s
        else:
            self._ewma = self._alpha * duration_s + (1 - self._alpha) * self._ewma
        self.observations += 1

    @property
    def ewma_s(self) -> Optional[float]:
        """Current average chunk duration, or ``None`` before any data."""
        return self._ewma

    def budget_s(self) -> Optional[float]:
        """Current stall budget for an outstanding chunk, or ``None``.

        ``None`` means "no stall detection": no observations yet and no
        ``initial_s`` seed to fall back to.
        """
        if self._ewma is None:
            return self._initial_s
        budget = max(self._floor_s, self._multiplier * self._ewma)
        if self._cap_s is not None:
            budget = min(budget, self._cap_s)
        return budget
