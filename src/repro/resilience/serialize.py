"""Exact JSON serialization of design evaluations for the checkpoint journal.

A resumed sweep must be bitwise-identical to an uninterrupted one, so the
journal's evaluation records round-trip every float exactly: Python's
``json`` writes floats with ``repr`` (the shortest digit string that
parses back to the same IEEE-754 double), and ``float()`` restores them
bit-for-bit.  Numpy scalars are plain-``float``-ed on the way out — they
subclass :class:`float`, so the value (and its bits) are unchanged.

Only :class:`~repro.core.evaluate.DesignEvaluation` (and the
:class:`~repro.core.design.DesignPoint` inside it) is serialized; the
heavyweight site context is never journaled — resume validates it by
fingerprint instead (see :mod:`repro.resilience.checkpoint`).
"""

from __future__ import annotations

from typing import Any, Dict

from ..core.design import DesignPoint, Strategy
from ..core.evaluate import DesignEvaluation
from ..grid.scaling import RenewableInvestment

#: DesignEvaluation float fields, in declaration order.
_EVALUATION_FIELDS = (
    "coverage",
    "operational_tons",
    "renewables_embodied_tons",
    "battery_embodied_tons",
    "servers_embodied_tons",
    "grid_import_mwh",
    "surplus_mwh",
    "moved_mwh",
    "battery_cycles_per_day",
)

#: DesignPoint float fields (investment flattened separately).
_DESIGN_FIELDS = (
    "battery_mwh",
    "depth_of_discharge",
    "extra_capacity_fraction",
    "flexible_ratio",
)


def design_to_json(design: DesignPoint) -> Dict[str, float]:
    """Flatten a design point to a JSON-safe dict of plain floats."""
    record = {
        "solar_mw": float(design.investment.solar_mw),
        "wind_mw": float(design.investment.wind_mw),
    }
    for name in _DESIGN_FIELDS:
        record[name] = float(getattr(design, name))
    return record


def design_from_json(record: Dict[str, Any]) -> DesignPoint:
    """Rebuild a design point from :func:`design_to_json` output."""
    return DesignPoint(
        investment=RenewableInvestment(
            solar_mw=record["solar_mw"], wind_mw=record["wind_mw"]
        ),
        **{name: record[name] for name in _DESIGN_FIELDS},
    )


def evaluation_to_json(evaluation: DesignEvaluation) -> Dict[str, Any]:
    """Flatten one evaluation to a JSON-safe dict (floats round-trip exactly)."""
    record: Dict[str, Any] = {
        "design": design_to_json(evaluation.design),
        "strategy": evaluation.strategy.name,
    }
    for name in _EVALUATION_FIELDS:
        record[name] = float(getattr(evaluation, name))
    return record


def evaluation_from_json(record: Dict[str, Any]) -> DesignEvaluation:
    """Rebuild an evaluation from :func:`evaluation_to_json` output.

    Raises
    ------
    KeyError / TypeError / ValueError
        If the record is structurally damaged; callers wrap this into a
        checkpoint-corruption error with file context.
    """
    return DesignEvaluation(
        design=design_from_json(record["design"]),
        strategy=Strategy[record["strategy"]],
        **{name: record[name] for name in _EVALUATION_FIELDS},
    )
