"""Deterministic fault injection for sweep chunks.

A :class:`FaultPlan` maps chunk ordinals to faults that tests and CI use to
exercise the optimizer's fault-tolerance machinery end-to-end:

* ``kill`` — the worker process exits hard mid-chunk (``os._exit``), which
  poisons the sweep engine's whole process pool (``BrokenProcessPool``)
  exactly like a real OOM kill or segfault;
* ``delay`` — the worker sleeps before evaluating, pushing the chunk past a
  configured per-chunk stall timeout;
* ``corrupt`` — the worker returns a malformed payload (wrong element type),
  caught by :func:`repro.resilience.validate.validate_chunk_result` before
  any result is written back.

Plans are deterministic: built either from explicit chunk ordinals, from a
compact CLI spec string (:meth:`FaultPlan.from_spec`), or pseudo-randomly
from a seed (:meth:`FaultPlan.from_seed`).  By default a fault fires only on
a chunk's *first* attempt (``max_faulted_attempts=1``), so retried chunks
succeed and the sweep's final result is bitwise-identical to a fault-free
run — the property the acceptance tests pin down.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from enum import Enum, unique
from random import Random
from typing import Dict, FrozenSet, Iterable, Mapping, Optional


@unique
class FaultKind(Enum):
    """The injectable chunk faults.

    ``KILL``/``DELAY``/``CORRUPT`` are chunk-scoped and executed by
    :func:`execute_pre_fault` / :func:`corrupt_payload` in any sweep
    worker.  ``SHM`` is site-scoped (see
    :class:`repro.resilience.domains.FleetFaultPlan`): the fleet worker
    raises :class:`~repro.core.shm.SharedContextError` before touching
    the site's segment, simulating a torn/unattachable segment;
    :func:`execute_pre_fault` ignores it.
    """

    KILL = "kill"
    DELAY = "delay"
    CORRUPT = "corrupt"
    SHM = "shm"


@dataclass(frozen=True)
class FaultAction:
    """One fault to execute inside a worker for one chunk attempt."""

    kind: FaultKind
    delay_s: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of chunk faults.

    Chunk ordinals index the sweep's chunk list in submission order (0 is
    the first chunk of the grid).  A fault fires only while the chunk's
    attempt number is below ``max_faulted_attempts``; the default of 1
    means "fail once, then behave", so any retry succeeds.
    """

    kill_chunks: FrozenSet[int] = frozenset()
    delay_chunks: Mapping[int, float] = field(default_factory=dict)
    corrupt_chunks: FrozenSet[int] = frozenset()
    max_faulted_attempts: int = 1

    def __post_init__(self) -> None:
        if self.max_faulted_attempts < 1:
            raise ValueError(
                f"max_faulted_attempts must be >= 1, got {self.max_faulted_attempts}"
            )
        for ordinal, delay in self.delay_chunks.items():
            if delay < 0:
                raise ValueError(
                    f"delay for chunk {ordinal} must be >= 0, got {delay}"
                )

    def is_empty(self) -> bool:
        """Whether this plan injects no faults at all."""
        return not (self.kill_chunks or self.delay_chunks or self.corrupt_chunks)

    def action_for(self, chunk_ordinal: int, attempt: int) -> Optional[FaultAction]:
        """The fault for one chunk attempt, or ``None`` (kill wins ties)."""
        if attempt >= self.max_faulted_attempts:
            return None
        if chunk_ordinal in self.kill_chunks:
            return FaultAction(FaultKind.KILL)
        if chunk_ordinal in self.delay_chunks:
            return FaultAction(FaultKind.DELAY, delay_s=self.delay_chunks[chunk_ordinal])
        if chunk_ordinal in self.corrupt_chunks:
            return FaultAction(FaultKind.CORRUPT)
        return None

    @classmethod
    def from_seed(
        cls,
        seed: int,
        n_chunks: int,
        kills: int = 1,
        delays: int = 0,
        corruptions: int = 0,
        delay_s: float = 0.5,
        max_faulted_attempts: int = 1,
    ) -> "FaultPlan":
        """A pseudo-random plan over ``n_chunks`` chunks, fixed by ``seed``.

        Selects ``kills + delays + corruptions`` distinct chunk ordinals
        (capped at ``n_chunks``) with a seeded :class:`random.Random`, so
        the same arguments always produce the same plan.
        """
        if n_chunks < 0:
            raise ValueError(f"n_chunks must be >= 0, got {n_chunks}")
        if min(kills, delays, corruptions) < 0:
            raise ValueError("fault counts must be >= 0")
        wanted = min(kills + delays + corruptions, n_chunks)
        picked = Random(seed).sample(range(n_chunks), wanted)
        killed = frozenset(picked[:kills])
        delayed = {ordinal: delay_s for ordinal in picked[kills : kills + delays]}
        corrupted = frozenset(picked[kills + delays :])
        return cls(
            kill_chunks=killed,
            delay_chunks=delayed,
            corrupt_chunks=corrupted,
            max_faulted_attempts=max_faulted_attempts,
        )

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a compact CLI spec, e.g. ``"kill=0,2;delay=1:0.5;corrupt=3"``.

        Semicolon-separated clauses; ``kill``/``corrupt`` take
        comma-separated chunk ordinals, ``delay`` takes comma-separated
        ``ordinal:seconds`` pairs.  An optional ``attempts=N`` clause sets
        ``max_faulted_attempts``.
        """
        kill: set = set()
        corrupt: set = set()
        delay: Dict[int, float] = {}
        attempts = 1
        for clause in filter(None, (part.strip() for part in spec.split(";"))):
            if "=" not in clause:
                raise ValueError(f"bad fault clause {clause!r} (expected key=values)")
            key, _, values = clause.partition("=")
            key = key.strip()
            try:
                if key == "kill":
                    kill.update(int(v) for v in values.split(","))
                elif key == "corrupt":
                    corrupt.update(int(v) for v in values.split(","))
                elif key == "delay":
                    for pair in values.split(","):
                        ordinal, _, seconds = pair.partition(":")
                        delay[int(ordinal)] = float(seconds) if seconds else 0.5
                elif key == "attempts":
                    attempts = int(values)
                else:
                    raise ValueError(
                        f"unknown fault kind {key!r} "
                        f"(expected kill, delay, corrupt, or attempts)"
                    )
            except ValueError as error:
                raise ValueError(f"bad fault clause {clause!r}: {error}") from None
        return cls(
            kill_chunks=frozenset(kill),
            delay_chunks=delay,
            corrupt_chunks=frozenset(corrupt),
            max_faulted_attempts=attempts,
        )


def execute_pre_fault(action: Optional[FaultAction]) -> None:
    """Run a fault's worker-side *pre-evaluation* effect (kill or delay)."""
    if action is None:
        return
    if action.kind is FaultKind.KILL:
        # A hard exit, not an exception: the parent sees the same
        # BrokenProcessPool a real worker crash produces.
        os._exit(1)
    if action.kind is FaultKind.DELAY:
        time.sleep(action.delay_s)


def corrupt_payload(evaluations: Iterable[object]) -> list:
    """The ``corrupt`` fault's payload: right length, wrong element type."""
    damaged = list(evaluations)
    if damaged:
        damaged[-1] = "corrupted-by-fault-plan"
    return damaged
