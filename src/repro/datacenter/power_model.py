"""Energy-proportional server and datacenter power models (paper §3.1, §4.3).

The paper models server power "as a linear function of utilization with the
y-intercept denoting a server's idle power" (Fig. 3 shows the resulting
CPU/power correlation for Meta's fleet).  At datacenter scale the power
swing is much smaller than the utilization swing — ~4% vs ~20% — because of
the idle intercept, cooling/power-delivery overheads (PUE), and non-compute
loads that do not track CPU.  This module provides both levels:

* :class:`ServerModel` — one machine's linear utilization→power curve, with
  the HPE ProLiant DL360 Gen10 defaults the paper uses as its embodied-carbon
  proxy (85 W TDP).
* :class:`DatacenterPowerModel` — a homogeneous fleet plus PUE and a constant
  non-IT load, with the inverse map needed by the scheduler (shifted *work*
  moves utilization, which maps back to power).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries import HourlySeries
from ..timeseries.stats import is_exact_zero

#: The paper's proxy server: HPE ProLiant DL360 Gen10, single-socket, 48 GB
#: DRAM, 85 W TDP.  Wall power at full load exceeds CPU TDP; 250 W is a
#: representative full-system peak for this class of machine.
DEFAULT_SERVER_PEAK_W = 250.0

#: Idle power as a fraction of peak.  Deliberately high: at fleet scale the
#: "server" aggregates DRAM, storage, and fans that barely track CPU, and the
#: paper's Fig. 3 shows only a ~4% facility power swing for a ~20-point
#: utilization swing.
DEFAULT_SERVER_IDLE_FRACTION = 0.65


@dataclass(frozen=True)
class ServerModel:
    """Linear utilization→power model for a single server.

    ``power(u) = idle_w + (peak_w - idle_w) * u`` for utilization
    ``u in [0, 1]``.
    """

    peak_w: float = DEFAULT_SERVER_PEAK_W
    idle_w: float = DEFAULT_SERVER_PEAK_W * DEFAULT_SERVER_IDLE_FRACTION

    def __post_init__(self) -> None:
        if self.peak_w <= 0:
            raise ValueError(f"peak_w must be positive, got {self.peak_w}")
        if not 0 <= self.idle_w <= self.peak_w:
            raise ValueError(
                f"idle_w must be in [0, peak_w], got idle={self.idle_w}, peak={self.peak_w}"
            )

    @property
    def dynamic_range_w(self) -> float:
        """Peak minus idle power — the utilization-proportional part."""
        return self.peak_w - self.idle_w

    def power_w(self, utilization: float) -> float:
        """Wall power (W) at a given utilization in [0, 1]."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        return self.idle_w + self.dynamic_range_w * utilization

    def utilization_for_power(self, power_w: float) -> float:
        """Inverse of :meth:`power_w`; raises if power is outside [idle, peak]."""
        if not self.idle_w <= power_w <= self.peak_w:
            raise ValueError(
                f"power {power_w} W outside server range [{self.idle_w}, {self.peak_w}]"
            )
        if is_exact_zero(self.dynamic_range_w):
            return 0.0
        return (power_w - self.idle_w) / self.dynamic_range_w


@dataclass(frozen=True)
class DatacenterPowerModel:
    """A homogeneous server fleet plus facility overheads.

    Facility power is ``pue * (IT power) + non_it_mw``:

    * ``n_servers`` identical :class:`ServerModel` machines;
    * ``pue`` — power usage effectiveness multiplier on IT power (cooling,
      power delivery);
    * ``non_it_mw`` — constant load that does not track CPU (network gear,
      storage, lighting).  This constant share is what compresses a ~20%
      utilization swing into the ~4% facility power swing of Fig. 3.
    """

    n_servers: int
    server: ServerModel = ServerModel()
    pue: float = 1.10
    non_it_mw: float = 0.0

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise ValueError(f"n_servers must be positive, got {self.n_servers}")
        if self.pue < 1.0:
            raise ValueError(f"pue must be >= 1.0, got {self.pue}")
        if self.non_it_mw < 0:
            raise ValueError(f"non_it_mw must be non-negative, got {self.non_it_mw}")

    # ------------------------------------------------------------------
    # Forward map: utilization -> facility power
    # ------------------------------------------------------------------
    def it_power_mw(self, utilization: float) -> float:
        """IT (server) power in MW at fleet-average utilization."""
        return self.n_servers * self.server.power_w(utilization) / 1e6

    def facility_power_mw(self, utilization: float) -> float:
        """Total facility power in MW at fleet-average utilization."""
        return self.pue * self.it_power_mw(utilization) + self.non_it_mw

    @property
    def peak_power_mw(self) -> float:
        """Facility power at 100% utilization — the provisioning limit."""
        return self.facility_power_mw(1.0)

    @property
    def idle_power_mw(self) -> float:
        """Facility power at 0% utilization."""
        return self.facility_power_mw(0.0)

    # ------------------------------------------------------------------
    # Inverse map: facility power -> utilization
    # ------------------------------------------------------------------
    def utilization_for_power(self, power_mw: float) -> float:
        """Fleet utilization implied by a facility power level."""
        if not self.idle_power_mw <= power_mw <= self.peak_power_mw:
            raise ValueError(
                f"power {power_mw} MW outside facility range "
                f"[{self.idle_power_mw:.3f}, {self.peak_power_mw:.3f}]"
            )
        it_mw = (power_mw - self.non_it_mw) / self.pue
        server_w = it_mw * 1e6 / self.n_servers
        return self.server.utilization_for_power(server_w)

    def power_trace(self, utilization: HourlySeries) -> HourlySeries:
        """Map an hourly utilization trace to facility power (MW)."""
        values = utilization.values
        if values.min() < 0.0 or values.max() > 1.0:
            raise ValueError("utilization trace must lie in [0, 1]")
        it_w = self.server.idle_w + self.server.dynamic_range_w * values
        power = self.pue * self.n_servers * it_w / 1e6 + self.non_it_mw
        return HourlySeries(power, utilization.calendar, name="facility power")

    # ------------------------------------------------------------------
    # Sizing helpers
    # ------------------------------------------------------------------
    def with_extra_capacity(self, extra_fraction: float) -> "DatacenterPowerModel":
        """A fleet grown by ``extra_fraction`` (e.g. 0.25 → 25% more servers).

        Carbon-aware scheduling may need extra servers for deferred work
        (§4.3); this returns the grown model with identical per-server and
        facility parameters.
        """
        if extra_fraction < 0:
            raise ValueError(f"extra_fraction must be non-negative, got {extra_fraction}")
        grown = int(np.ceil(self.n_servers * (1.0 + extra_fraction)))
        return DatacenterPowerModel(
            n_servers=grown, server=self.server, pue=self.pue, non_it_mw=self.non_it_mw
        )


def fleet_for_average_power(
    avg_power_mw: float,
    avg_utilization: float = 0.55,
    server: ServerModel = ServerModel(),
    pue: float = 1.10,
    non_it_share: float = 0.50,
) -> DatacenterPowerModel:
    """Size a fleet so that facility power at ``avg_utilization`` equals
    ``avg_power_mw``.

    ``non_it_share`` is the fraction of average facility power drawn by
    constant non-IT loads; together with the default server idle fraction it
    reproduces the paper's ~4% facility-power swing for a ~20-point
    utilization swing (Fig. 3).
    """
    if avg_power_mw <= 0:
        raise ValueError(f"avg_power_mw must be positive, got {avg_power_mw}")
    if not 0.0 < avg_utilization <= 1.0:
        raise ValueError(f"avg_utilization must be in (0, 1], got {avg_utilization}")
    if not 0.0 <= non_it_share < 1.0:
        raise ValueError(f"non_it_share must be in [0, 1), got {non_it_share}")
    non_it_mw = avg_power_mw * non_it_share
    it_budget_mw = (avg_power_mw - non_it_mw) / pue
    per_server_w = server.power_w(avg_utilization)
    n_servers = max(1, round(it_budget_mw * 1e6 / per_server_w))
    return DatacenterPowerModel(
        n_servers=n_servers, server=server, pue=pue, non_it_mw=non_it_mw
    )
