"""Turbo Boost as an alternative to buying servers (paper §4.3 note).

    "Note that, as an alternative to deploying more servers, datacenters
    might Turbo Boost their current servers to increase compute throughput
    without increasing capital costs and embodied carbon."

Boosting clock frequency raises throughput roughly linearly but power
super-linearly (dynamic power scales with frequency times voltage squared,
and voltage rises with frequency).  So Turbo trades *operational* energy for
the *embodied* carbon of extra machines — exactly the kind of trade-off
Carbon Explorer exists to arbitrate.  :func:`compare_turbo_vs_servers` runs
that comparison for a given extra-capacity requirement.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..carbon.embodied import EmbodiedCarbonModel
from .power_model import DatacenterPowerModel

#: Exponent of power in frequency for the boosted region.  Dynamic power is
#: ~f*V^2 with V roughly linear in f in the turbo range, giving ~f^3 for the
#: dynamic part; whole-server wall power dilutes this toward ~2.5.
DEFAULT_POWER_EXPONENT = 2.5

#: How far past nominal frequency commodity servers can sustain all-core
#: turbo (20% is typical of the DL360-class machines the paper models).
MAX_BOOST = 1.35


@dataclass(frozen=True)
class TurboBoostModel:
    """Frequency boosting of an existing fleet.

    Attributes
    ----------
    boost:
        Frequency (and throughput) multiplier, 1.0 = nominal.
    power_exponent:
        Exponent relating dynamic-power growth to the boost.
    """

    boost: float
    power_exponent: float = DEFAULT_POWER_EXPONENT

    def __post_init__(self) -> None:
        if not 1.0 <= self.boost <= MAX_BOOST:
            raise ValueError(
                f"boost must be in [1.0, {MAX_BOOST}], got {self.boost}"
            )
        if self.power_exponent < 1.0:
            raise ValueError(
                f"power_exponent must be >= 1 (superlinear power), "
                f"got {self.power_exponent}"
            )

    @property
    def extra_capacity_fraction(self) -> float:
        """Throughput gained, as a fraction of nominal capacity."""
        return self.boost - 1.0

    @property
    def dynamic_power_factor(self) -> float:
        """Multiplier on per-server *dynamic* power while boosted."""
        return self.boost**self.power_exponent

    def energy_per_op_factor(self) -> float:
        """Energy per unit of work relative to nominal (always >= 1)."""
        return self.dynamic_power_factor / self.boost

    @classmethod
    def for_extra_capacity(
        cls, extra_fraction: float, power_exponent: float = DEFAULT_POWER_EXPONENT
    ) -> "TurboBoostModel":
        """The boost level delivering a required extra-capacity fraction.

        Raises if the requirement exceeds what turbo can deliver
        (``MAX_BOOST - 1``) — beyond that, servers must be bought.
        """
        if extra_fraction < 0:
            raise ValueError(f"extra_fraction must be non-negative, got {extra_fraction}")
        boost = 1.0 + extra_fraction
        if boost > MAX_BOOST:
            raise ValueError(
                f"turbo cannot deliver +{extra_fraction:.0%}; max is "
                f"+{MAX_BOOST - 1.0:.0%}"
            )
        return cls(boost=boost, power_exponent=power_exponent)


@dataclass(frozen=True)
class CapacityComparison:
    """Annual carbon cost of delivering extra capacity two ways.

    Attributes
    ----------
    extra_fraction:
        The capacity requirement compared.
    turbo_operational_tons:
        Extra operational carbon per year from boosted (less efficient)
        execution of the surge work.
    servers_embodied_tons:
        Annualized embodied carbon of buying servers instead.
    """

    extra_fraction: float
    turbo_operational_tons: float
    servers_embodied_tons: float

    @property
    def turbo_wins(self) -> bool:
        """``True`` when boosting is the lower-carbon option."""
        return self.turbo_operational_tons < self.servers_embodied_tons


def compare_turbo_vs_servers(
    fleet: DatacenterPowerModel,
    embodied: EmbodiedCarbonModel,
    extra_fraction: float,
    surge_hours_per_year: float,
    grid_intensity_g_per_kwh: float,
    power_exponent: float = DEFAULT_POWER_EXPONENT,
) -> CapacityComparison:
    """Which is greener for a given surge-capacity need: turbo or servers?

    Parameters
    ----------
    fleet:
        The existing fleet.
    embodied:
        Embodied model pricing the extra servers.
    extra_fraction:
        Required extra capacity (e.g. 0.2 = +20%).
    surge_hours_per_year:
        Hours per year the extra capacity actually runs (deferred-work
        bursts, not the whole year).
    grid_intensity_g_per_kwh:
        Carbon intensity of the energy powering the surge.  Zero (surge
        powered purely by surplus renewables) makes turbo free and always
        preferable.
    """
    if surge_hours_per_year < 0:
        raise ValueError(
            f"surge_hours_per_year must be non-negative, got {surge_hours_per_year}"
        )
    if grid_intensity_g_per_kwh < 0:
        raise ValueError("grid intensity must be non-negative")

    turbo = TurboBoostModel.for_extra_capacity(extra_fraction, power_exponent)
    # The surge work itself: extra_fraction of fleet IT dynamic power for
    # surge_hours.  Run on new servers it costs that energy at nominal
    # efficiency; run boosted it costs energy_per_op_factor times as much —
    # and boosting also taxes the *base* work running on the same cores.
    dynamic_mw = fleet.n_servers * fleet.server.dynamic_range_w / 1e6 * fleet.pue
    surge_energy_mwh = dynamic_mw * extra_fraction * surge_hours_per_year
    base_energy_mwh = dynamic_mw * 1.0 * surge_hours_per_year
    penalty = turbo.energy_per_op_factor() - 1.0
    extra_energy_mwh = (surge_energy_mwh + base_energy_mwh) * penalty
    turbo_tons = extra_energy_mwh * 1000.0 * grid_intensity_g_per_kwh / 1e6

    import math

    n_extra = math.ceil(fleet.n_servers * extra_fraction)
    server_tons = embodied.servers_annual_tons(n_extra)
    return CapacityComparison(
        extra_fraction=extra_fraction,
        turbo_operational_tons=turbo_tons,
        servers_embodied_tons=server_tons,
    )
