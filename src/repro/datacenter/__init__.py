"""Datacenter substrate: sites, power models, demand synthesis, workloads."""

from .demand import (
    GOOGLE_BORG_PROFILE,
    DatacenterDemand,
    UtilizationProfile,
    meta_and_google_profiles,
    synthesize_demand,
    synthesize_utilization,
)
from .locations import (
    DATACENTER_SITES,
    SITE_ORDER,
    DatacenterSite,
    get_site,
    regional_investment,
    total_fleet_investment,
)
from .turbo import (
    CapacityComparison,
    TurboBoostModel,
    compare_turbo_vs_servers,
)
from .power_model import (
    DEFAULT_SERVER_IDLE_FRACTION,
    DEFAULT_SERVER_PEAK_W,
    DatacenterPowerModel,
    ServerModel,
    fleet_for_average_power,
)
from .workloads import (
    DATA_PROCESSING_FLEET_FRACTION,
    DEFAULT_FLEXIBLE_WORKLOAD_RATIO,
    WORKLOAD_TIERS,
    FlexibilityModel,
    WorkloadTier,
    flexible_fraction_within,
    tier_shares_sum,
)

__all__ = [
    "GOOGLE_BORG_PROFILE",
    "DatacenterDemand",
    "UtilizationProfile",
    "meta_and_google_profiles",
    "synthesize_demand",
    "synthesize_utilization",
    "DATACENTER_SITES",
    "SITE_ORDER",
    "DatacenterSite",
    "get_site",
    "regional_investment",
    "total_fleet_investment",
    "CapacityComparison",
    "TurboBoostModel",
    "compare_turbo_vs_servers",
    "DEFAULT_SERVER_IDLE_FRACTION",
    "DEFAULT_SERVER_PEAK_W",
    "DatacenterPowerModel",
    "ServerModel",
    "fleet_for_average_power",
    "DATA_PROCESSING_FLEET_FRACTION",
    "DEFAULT_FLEXIBLE_WORKLOAD_RATIO",
    "WORKLOAD_TIERS",
    "FlexibilityModel",
    "WorkloadTier",
    "flexible_fraction_within",
    "tier_shares_sum",
]
