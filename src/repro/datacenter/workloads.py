"""Workload tiers, SLOs, and the flexible-workload-ratio model (Fig. 10).

The paper organizes hyperscale workloads into SLO tiers.  Figure 10 breaks
down Meta's *data-processing* workloads (about 7.5% of the fleet) by
completion-time SLO; §3.1 adds that ~40% of all Borg jobs at Google have
24-hour completion SLOs — the "realistic flexible workload ratio" the
holistic evaluation (§5.2) assumes.  Carbon-aware scheduling treats the
flexible fraction of each hour's load as movable within its SLO window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Fraction of the whole fleet that is offline data processing (§4.3).
DATA_PROCESSING_FLEET_FRACTION = 0.075

#: The paper's default flexible workload ratio for the holistic analysis
#: (§5.2): "we assume 40% of datacenter workloads are delay-tolerant".
DEFAULT_FLEXIBLE_WORKLOAD_RATIO = 0.40


@dataclass(frozen=True)
class WorkloadTier:
    """One SLO tier from Figure 10.

    Attributes
    ----------
    tier:
        Tier number (1-5) as labelled in the figure.
    name:
        Human-readable tier description.
    slo_window_hours:
        Half-width of the completion window in hours: Tier 1 is ±1 h, Tier 4
        is "Daily" (±24 h), Tier 5 has no SLO (``None`` = unbounded).
    share:
        Fraction of data-processing workloads in this tier.
    """

    tier: int
    name: str
    slo_window_hours: Optional[int]
    share: float

    def __post_init__(self) -> None:
        if self.tier < 1:
            raise ValueError(f"tier must be >= 1, got {self.tier}")
        if self.slo_window_hours is not None and self.slo_window_hours < 1:
            raise ValueError(
                f"slo_window_hours must be >= 1 or None, got {self.slo_window_hours}"
            )
        if not 0.0 <= self.share <= 1.0:
            raise ValueError(f"share must be in [0, 1], got {self.share}")

    def can_shift_within(self, window_hours: int) -> bool:
        """``True`` if this tier's work may move by up to ``window_hours``."""
        if window_hours < 0:
            raise ValueError(f"window_hours must be non-negative, got {window_hours}")
        return self.slo_window_hours is None or self.slo_window_hours >= window_hours


#: Figure 10 — breakdown of data-processing workloads by completion-time SLO.
WORKLOAD_TIERS: Tuple[WorkloadTier, ...] = (
    WorkloadTier(1, "SLO: +/- 1 hour", 1, 0.088),
    WorkloadTier(2, "SLO: +/- 2 hours", 2, 0.038),
    WorkloadTier(3, "SLO: +/- 4 hours", 4, 0.105),
    WorkloadTier(4, "SLO: Daily", 24, 0.712),
    WorkloadTier(5, "No SLO", None, 0.057),
)


def tier_shares_sum() -> float:
    """Sum of tier shares — should be 1.0 (the figure's bars cover 100%)."""
    return sum(t.share for t in WORKLOAD_TIERS)


def flexible_fraction_within(window_hours: int) -> float:
    """Fraction of data-processing work shiftable by at least ``window_hours``.

    §4.3: "about 87.4% of the workloads have SLOs that are greater than
    4-hours" — i.e. Tiers 4 and 5 plus the ±4-hour Tier 3 boundary case; this
    helper reproduces that arithmetic for any window.
    """
    return sum(t.share for t in WORKLOAD_TIERS if t.can_shift_within(window_hours))


@dataclass(frozen=True)
class FlexibilityModel:
    """How much of each hour's datacenter load the scheduler may move.

    Attributes
    ----------
    flexible_ratio:
        Fraction of each hour's running work that is delay-tolerant (the
        paper's FWR input constraint; 0.40 in the holistic analysis, 0.10 in
        the Fig. 11 illustration, 1.0 in the Fig. 12 capacity study).
    window_hours:
        How far (in hours) flexible work may move from its original slot.
        The paper's greedy algorithm shifts within the same day (24 h).
    """

    flexible_ratio: float = DEFAULT_FLEXIBLE_WORKLOAD_RATIO
    window_hours: int = 24

    def __post_init__(self) -> None:
        if not 0.0 <= self.flexible_ratio <= 1.0:
            raise ValueError(
                f"flexible_ratio must be in [0, 1], got {self.flexible_ratio}"
            )
        if self.window_hours < 1:
            raise ValueError(f"window_hours must be >= 1, got {self.window_hours}")

    def movable_power_mw(self, load_mw: float) -> float:
        """Power (MW) of the flexible slice of an hour's ``load_mw``."""
        if load_mw < 0:
            raise ValueError(f"load must be non-negative, got {load_mw}")
        return load_mw * self.flexible_ratio

    @classmethod
    def from_tiers(cls, window_hours: int = 24) -> "FlexibilityModel":
        """A model whose ratio is the data-processing fleet share times the
        tier fraction shiftable within ``window_hours``.

        This composes Fig. 10 with the 7.5% fleet share: e.g. a 24-hour
        window yields ``0.075 * (0.712 + 0.057)`` ≈ 5.8% of total fleet load
        — the conservative lower bound when only data-processing work moves.
        """
        ratio = DATA_PROCESSING_FLEET_FRACTION * flexible_fraction_within(window_hours)
        return cls(flexible_ratio=ratio, window_hours=window_hours)
