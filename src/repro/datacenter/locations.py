"""Meta's US datacenter fleet and regional renewable investments (Table 1).

The paper's Table 1 lists thirteen datacenter locations, the balancing
authority serving each, and Meta's renewable investments per region.  Three
rows (Illinois, Ohio, Alabama) share a balancing authority with another row
and carry no separate investment figure; the paper attributes one investment
to each *region* (balancing authority), which we mirror with
:func:`regional_investment`.

Average datacenter powers are quoted by the paper for Oregon (73 MW), North
Carolina (51 MW), and Utah (19 MW); the remaining sites get plausible
hyperscale values in the 20-40 MW band the paper cites for provisioning
("hyperscale datacenters ... are provisioned for 20 to 40 MW").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..grid.authorities import BalancingAuthority, get_authority
from ..grid.scaling import RenewableInvestment


@dataclass(frozen=True)
class DatacenterSite:
    """One datacenter location from Table 1.

    Attributes
    ----------
    state:
        Two-letter state code the paper uses as the site label.
    location:
        City / county name.
    authority_code:
        EIA balancing-authority code of the local grid.
    investment:
        Meta's renewable investment attributed to this table row (zero for
        the rows that share a region with another site).
    avg_power_mw:
        Average datacenter power draw used for demand synthesis.
    """

    state: str
    location: str
    authority_code: str
    investment: RenewableInvestment
    avg_power_mw: float

    def __post_init__(self) -> None:
        if self.avg_power_mw <= 0:
            raise ValueError(f"{self.state}: avg_power_mw must be positive")
        get_authority(self.authority_code)  # validate the code eagerly

    @property
    def authority(self) -> BalancingAuthority:
        """The balancing authority serving this site."""
        return get_authority(self.authority_code)


#: Table 1 rows, in paper order.  Investment figures are the paper's MW
#: numbers; average powers follow the paper where quoted (OR/NC/UT).
DATACENTER_SITES: Dict[str, DatacenterSite] = {
    site.state: site
    for site in (
        DatacenterSite("NE", "Sarpy County, Nebraska", "SWPP",
                       RenewableInvestment(solar_mw=0, wind_mw=515), 35.0),
        DatacenterSite("OR", "Prineville, Oregon", "BPAT",
                       RenewableInvestment(solar_mw=100, wind_mw=0), 73.0),
        DatacenterSite("UT", "Eagle Mountain, Utah", "PACE",
                       RenewableInvestment(solar_mw=694, wind_mw=239), 19.0),
        DatacenterSite("NM", "Los Lunas, New Mexico", "PNM",
                       RenewableInvestment(solar_mw=420, wind_mw=215), 30.0),
        DatacenterSite("TX", "Fort Worth, Texas", "ERCO",
                       RenewableInvestment(solar_mw=300, wind_mw=404), 40.0),
        DatacenterSite("IL", "DeKalb, Illinois", "PJM",
                       RenewableInvestment(), 28.0),
        DatacenterSite("VA", "Henrico, Virginia", "PJM",
                       RenewableInvestment(solar_mw=840, wind_mw=309), 45.0),
        DatacenterSite("OH", "New Albany, Ohio", "PJM",
                       RenewableInvestment(), 32.0),
        DatacenterSite("NC", "Forest City, North Carolina", "DUK",
                       RenewableInvestment(solar_mw=410, wind_mw=0), 51.0),
        DatacenterSite("IA", "Altoona, Iowa", "MISO",
                       RenewableInvestment(solar_mw=0, wind_mw=141), 38.0),
        DatacenterSite("GA", "Newton County, Georgia", "SOCO",
                       RenewableInvestment(solar_mw=425, wind_mw=0), 30.0),
        DatacenterSite("TN", "Gallatin, Tennessee", "TVA",
                       RenewableInvestment(solar_mw=742, wind_mw=0), 35.0),
        DatacenterSite("AL", "Huntsville, Alabama", "TVA",
                       RenewableInvestment(), 25.0),
    )
}

#: Site order as printed in Table 1.
SITE_ORDER: Tuple[str, ...] = (
    "NE", "OR", "UT", "NM", "TX", "IL", "VA", "OH", "NC", "IA", "GA", "TN", "AL",
)


def get_site(state: str) -> DatacenterSite:
    """Look up a datacenter site by its state code.

    Raises
    ------
    KeyError
        With the list of known sites if ``state`` is unknown.
    """
    try:
        return DATACENTER_SITES[state]
    except KeyError:
        known = ", ".join(SITE_ORDER)
        raise KeyError(f"unknown datacenter site {state!r}; known: {known}") from None


def regional_investment(state: str) -> RenewableInvestment:
    """Meta's total renewable investment in a site's balancing authority.

    The paper attributes investments per region; sites like IL/OH (PJM) and
    AL (TVA) share their region's investment with the row where Table 1
    prints it.
    """
    site = get_site(state)
    total = RenewableInvestment()
    for other in DATACENTER_SITES.values():
        if other.authority_code == site.authority_code:
            total = total + other.investment
    return total


def total_fleet_investment() -> RenewableInvestment:
    """Meta's total US renewable investment: 3931 MW solar + 1823 MW wind =
    5754 MW.

    Note: the paper's printed Table 1 totals row reads "1823 solar / 3931
    wind", which contradicts its own per-row columns (they sum the other way
    round, and §4.1 confirms the column order via Oregon's solar-only
    100 MW).  The rows are authoritative; the printed totals are swapped.
    """
    total = RenewableInvestment()
    for site in DATACENTER_SITES.values():
        total = total + site.investment
    return total
