"""Synthetic datacenter demand traces (paper §3.1, Fig. 3).

The paper's demand-side input is Meta's hourly per-datacenter power, which is
proprietary.  We synthesize it from first principles instead (substitution
documented in DESIGN.md): a diurnal CPU-utilization cycle with the ~20-point
swing the paper reports for Meta (15 points for the Google/Borg comparison),
a weekend dip, occasional event/holiday peaks, and noise — mapped through the
energy-proportional :class:`~repro.datacenter.power_model.DatacenterPowerModel`,
which compresses it into the ~4% facility power swing of Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..timeseries import HOURS_PER_DAY, HourlySeries, YearCalendar
from .locations import DatacenterSite
from .power_model import DatacenterPowerModel, fleet_for_average_power


@dataclass(frozen=True)
class UtilizationProfile:
    """Parameters of a synthetic fleet CPU-utilization trace.

    Attributes
    ----------
    mean_utilization:
        Long-run average fleet utilization.
    diurnal_swing:
        Max-minus-min of the deterministic daily cycle, in utilization
        points (0.20 = the paper's ~20% Meta swing; 0.15 = Google's).
    peak_hour:
        Local hour of the daily utilization maximum (user activity peak).
    weekend_dip:
        Utilization points subtracted on Saturdays and Sundays.
    n_event_days:
        Number of special-event/holiday days with an extra utilization boost.
    event_boost:
        Utilization points added across an event day.
    noise:
        Standard deviation of hourly Gaussian noise, in utilization points.
    """

    mean_utilization: float = 0.55
    diurnal_swing: float = 0.20
    peak_hour: int = 20
    weekend_dip: float = 0.03
    n_event_days: int = 8
    event_boost: float = 0.08
    noise: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.mean_utilization < 1.0:
            raise ValueError(f"mean_utilization must be in (0,1), got {self.mean_utilization}")
        if self.diurnal_swing < 0 or self.diurnal_swing >= 1.0:
            raise ValueError(f"diurnal_swing must be in [0,1), got {self.diurnal_swing}")
        if not 0 <= self.peak_hour < HOURS_PER_DAY:
            raise ValueError(f"peak_hour must be in 0..23, got {self.peak_hour}")
        for name in ("weekend_dip", "event_boost", "noise"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.n_event_days < 0:
            raise ValueError(f"n_event_days must be non-negative, got {self.n_event_days}")


#: Profile matching the paper's Google/Borg comparison series (15-point swing).
GOOGLE_BORG_PROFILE = UtilizationProfile(diurnal_swing=0.15, peak_hour=19)


def synthesize_utilization(
    profile: UtilizationProfile,
    calendar: YearCalendar,
    rng: np.random.Generator,
) -> HourlySeries:
    """One year of hourly fleet CPU utilization in [0.02, 0.98].

    The deterministic daily cycle is a sinusoid peaking at ``peak_hour``;
    weekends dip, randomly chosen event days boost, and Gaussian noise
    jitters each hour.  Bounds are clamped away from 0/1 so the inverse
    power map stays well-defined.
    """
    hours = np.arange(calendar.n_hours)
    hour_of_day = hours % HOURS_PER_DAY
    day = hours // HOURS_PER_DAY

    diurnal = (profile.diurnal_swing / 2.0) * np.cos(
        2.0 * np.pi * (hour_of_day - profile.peak_hour) / HOURS_PER_DAY
    )

    jan1_weekday = calendar.weekday(0)
    weekday = (jan1_weekday + day) % 7
    weekend = np.where(weekday >= 5, -profile.weekend_dip, 0.0)

    event = np.zeros(calendar.n_hours)
    if profile.n_event_days > 0:
        event_days = rng.choice(calendar.n_days, size=profile.n_event_days, replace=False)
        event_mask = np.isin(day, event_days)
        event[event_mask] = profile.event_boost

    noise = rng.normal(0.0, profile.noise, calendar.n_hours)
    utilization = profile.mean_utilization + diurnal + weekend + event + noise
    return HourlySeries(
        np.clip(utilization, 0.02, 0.98), calendar, name="cpu utilization"
    )


@dataclass(frozen=True)
class DatacenterDemand:
    """A datacenter's synthesized demand: utilization, power, and fleet model.

    Attributes
    ----------
    site:
        The Table-1 site the trace belongs to.
    utilization:
        Hourly fleet CPU utilization.
    power:
        Hourly facility power, MW.
    fleet:
        The power model that links the two (needed by the scheduler to map
        shifted work back to power and to size extra capacity).
    profile:
        The utilization profile the trace was drawn from.
    """

    site: DatacenterSite
    utilization: HourlySeries
    power: HourlySeries
    fleet: DatacenterPowerModel
    profile: UtilizationProfile = field(default_factory=UtilizationProfile)

    @property
    def avg_power_mw(self) -> float:
        """Average facility power over the year."""
        return self.power.mean()

    @property
    def peak_power_mw(self) -> float:
        """Maximum hourly facility power over the year."""
        return self.power.max()

    def power_swing(self) -> float:
        """Relative facility power swing ``(max - min) / mean`` over the year."""
        return (self.power.max() - self.power.min()) / self.power.mean()

    def utilization_swing_points(self) -> float:
        """Max-minus-min utilization over the year, in points."""
        return self.utilization.max() - self.utilization.min()

    def diurnal_power_swing(self) -> float:
        """Average *within-day* relative power swing — the Fig. 3 ~4% number.

        Mean over days of ``(day max - day min) / day mean``; unlike the
        annual swing it is not inflated by events, weekends, or seasons.
        """
        days = self.power.values.reshape(self.power.calendar.n_days, 24)
        return float(((days.max(axis=1) - days.min(axis=1)) / days.mean(axis=1)).mean())

    def diurnal_utilization_swing_points(self) -> float:
        """Average within-day utilization swing, in points (Fig. 3 ~0.20)."""
        days = self.utilization.values.reshape(self.utilization.calendar.n_days, 24)
        return float((days.max(axis=1) - days.min(axis=1)).mean())


def synthesize_demand(
    site: DatacenterSite,
    calendar: YearCalendar,
    profile: UtilizationProfile = UtilizationProfile(),
    seed: int = 0,
) -> DatacenterDemand:
    """Synthesize one year of demand for a Table-1 site.

    The fleet is sized so average facility power matches the site's
    ``avg_power_mw``; the utilization trace then modulates power around that
    mean.  Deterministic in ``(site, calendar, profile, seed)``.
    """
    rng = np.random.default_rng(_demand_seed(site.state, calendar.year, seed))
    utilization = synthesize_utilization(profile, calendar, rng)
    fleet = fleet_for_average_power(
        site.avg_power_mw, avg_utilization=profile.mean_utilization
    )
    power = fleet.power_trace(utilization)
    return DatacenterDemand(
        site=site, utilization=utilization, power=power, fleet=fleet, profile=profile
    )


def _demand_seed(state: str, year: int, base_seed: int) -> int:
    """Stable per-(site, year) seed (process-independent, unlike ``hash``)."""
    digest = 1469598103934665603
    for char in f"dc:{state}:{year}:{base_seed}":
        digest ^= ord(char)
        digest = (digest * 1099511628211) % (1 << 64)
    return digest % (1 << 32)


def meta_and_google_profiles(
    calendar: YearCalendar, seed: int = 0
) -> Tuple[HourlySeries, HourlySeries]:
    """The two diurnal utilization series of Fig. 3 (left): Meta and Google.

    Returns ``(meta_utilization, google_utilization)`` drawn with independent
    noise from the 20-point and 15-point swing profiles respectively.
    """
    rng = np.random.default_rng(_demand_seed("fig3", calendar.year, seed))
    meta = synthesize_utilization(UtilizationProfile(), calendar, rng)
    google = synthesize_utilization(GOOGLE_BORG_PROFILE, calendar, rng)
    return meta.with_name("Meta"), google.with_name("Google")
