"""The combined battery + carbon-aware-scheduling heuristic (§5.2).

    "We use a heuristic based solution where the priority is given to the
    workloads to minimize the runtime delays.  Whenever there is lack of
    renewable supply, the energy stored in the battery is used first and
    workload shifting happens only if the energy stored in the batteries are
    not sufficient (at maximum DoD level).  Whenever there is extra renewable
    supply, all available workloads are executed to use the available power
    first and batteries are charged with the remaining supply."

This is simulated as a single forward pass over the year with a FIFO queue of
deferred work.  Deferred work carries a deadline (its SLO window); at the
deadline it is force-executed up to the capacity limit even if that means
importing grid energy — an SLO is a promise, not a suggestion — and any work
that physically cannot fit by its deadline keeps running late (tracked as
``late_mwh``) so energy is conserved.

The forward pass itself lives in :mod:`repro.kernels.combined` (battery
dynamics inlined on local floats, vectorized/battery-only fast paths for
degenerate configurations); this module validates inputs and wraps the
kernel's arrays into the result.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..battery import BatterySpec
from ..kernels.combined import combined_run
from ..obs import inc, span
from ..timeseries import HourlySeries
from ..timeseries.stats import is_exact_zero


@dataclass(frozen=True)
class CombinedResult:
    """Outcome of one year of the battery-first combined heuristic.

    Attributes
    ----------
    shifted_demand:
        Hourly power actually drawn by computation, MW, after deferral and
        deferred-work execution.
    grid_import:
        Hourly power drawn from the grid, MW.
    surplus:
        Hourly renewable surplus left after running deferred work and
        charging the battery, MW.
    charge_level:
        Battery energy content at the end of each hour, MWh.
    battery_spec:
        The battery that was operated.
    capacity_mw:
        The ``P_DC_MAX`` constraint.
    deferred_mwh:
        Total energy deferred out of its original hour.
    late_mwh:
        Deferred energy executed after its deadline (capacity-bound).
    unserved_mwh:
        Deferred energy still pending at year end (should be ~0 for sane
        configurations; conservation holds:
        ``shifted.total() + unserved == original.total()``).
    charged_mwh, discharged_mwh:
        Battery meter totals over the year.
    """

    shifted_demand: HourlySeries
    grid_import: HourlySeries
    surplus: HourlySeries
    charge_level: HourlySeries
    battery_spec: BatterySpec
    capacity_mw: float
    deferred_mwh: float
    late_mwh: float
    unserved_mwh: float
    charged_mwh: float
    discharged_mwh: float

    def equivalent_full_cycles(self) -> float:
        """Equivalent full battery cycles accumulated over the year."""
        usable = self.battery_spec.usable_mwh
        if is_exact_zero(usable):
            return 0.0
        return self.discharged_mwh / usable

    def peak_power_mw(self) -> float:
        """Peak of the shifted demand trace."""
        return self.shifted_demand.max()


def simulate_combined(
    demand: HourlySeries,
    supply: HourlySeries,
    battery: BatterySpec,
    capacity_mw: float,
    flexible_ratio: float,
    deadline_hours: int = 24,
    initial_soc: float = 1.0,
) -> CombinedResult:
    """Run the battery-first combined heuristic over a year.

    Per hour, in priority order:

    1. Force-run queued work whose deadline has arrived (up to capacity).
    2. If renewables exceed the load: run queued deferred work from the
       surplus, then charge the battery, then count what's left as surplus.
    3. If the load exceeds renewables: discharge the battery first; only if
       a deficit remains, defer up to ``flexible_ratio`` of this hour's
       original demand (with a deadline ``deadline_hours`` ahead); import
       any remainder from the grid.

    Parameters mirror :func:`repro.scheduling.greedy.schedule_carbon_aware`
    plus the battery spec.  Setting ``battery.capacity_mwh = 0`` degenerates
    to (an online version of) CAS alone; ``flexible_ratio = 0`` degenerates
    to the battery-only simulation.
    """
    if demand.calendar != supply.calendar:
        raise ValueError("demand and supply must share a calendar")
    if not 0.0 <= flexible_ratio <= 1.0:
        raise ValueError(f"flexible_ratio must be in [0, 1], got {flexible_ratio}")
    if deadline_hours < 1:
        raise ValueError(f"deadline_hours must be >= 1, got {deadline_hours}")
    if capacity_mw < demand.max():
        raise ValueError(
            f"capacity {capacity_mw} MW below demand peak {demand.max():.3f} MW"
        )

    if not 0.0 <= initial_soc <= 1.0:
        raise ValueError(f"initial_soc must be in [0, 1], got {initial_soc}")

    calendar = demand.calendar
    n_hours = calendar.n_hours
    floor = battery.floor_mwh

    with span(
        "simulate_combined",
        capacity_mwh=battery.capacity_mwh,
        fwr=flexible_ratio,
        hours=n_hours,
    ):
        run = combined_run(
            demand.values,
            supply.values,
            capacity_mwh=battery.capacity_mwh,
            floor_mwh=floor,
            max_charge_mw=battery.max_charge_mw,
            max_discharge_mw=battery.max_discharge_mw,
            charge_efficiency=battery.chemistry.charge_efficiency,
            discharge_efficiency=battery.chemistry.discharge_efficiency,
            initial_energy_mwh=floor + initial_soc * (battery.capacity_mwh - floor),
            capacity_mw=capacity_mw,
            flexible_ratio=flexible_ratio,
            deadline_hours=deadline_hours,
        )

    inc("combined_sims")
    inc("combined_sim_hours", n_hours)
    inc("schedule_deferrals", run.deferral_events)
    inc("combined_deferred_mwh", run.deferred_mwh)
    return CombinedResult(
        shifted_demand=HourlySeries(run.shifted_demand, calendar, name="shifted demand"),
        grid_import=HourlySeries(run.grid_import, calendar, name="grid import"),
        surplus=HourlySeries(run.surplus, calendar, name="surplus"),
        charge_level=HourlySeries(run.charge_level, calendar, name="charge level"),
        battery_spec=battery,
        capacity_mw=capacity_mw,
        deferred_mwh=run.deferred_mwh,
        late_mwh=run.late_mwh,
        unserved_mwh=run.unserved_mwh,
        charged_mwh=run.charged_mwh,
        discharged_mwh=run.discharged_mwh,
    )
