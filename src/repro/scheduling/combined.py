"""The combined battery + carbon-aware-scheduling heuristic (§5.2).

    "We use a heuristic based solution where the priority is given to the
    workloads to minimize the runtime delays.  Whenever there is lack of
    renewable supply, the energy stored in the battery is used first and
    workload shifting happens only if the energy stored in the batteries are
    not sufficient (at maximum DoD level).  Whenever there is extra renewable
    supply, all available workloads are executed to use the available power
    first and batteries are charged with the remaining supply."

This is simulated as a single forward pass over the year with a FIFO queue of
deferred work.  Deferred work carries a deadline (its SLO window); at the
deadline it is force-executed up to the capacity limit even if that means
importing grid energy — an SLO is a promise, not a suggestion — and any work
that physically cannot fit by its deadline keeps running late (tracked as
``late_mwh``) so energy is conserved.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..battery import Battery, BatterySpec
from ..obs import inc, span
from ..timeseries import HourlySeries

_EPSILON_MWH = 1e-9


@dataclass(frozen=True)
class CombinedResult:
    """Outcome of one year of the battery-first combined heuristic.

    Attributes
    ----------
    shifted_demand:
        Hourly power actually drawn by computation, MW, after deferral and
        deferred-work execution.
    grid_import:
        Hourly power drawn from the grid, MW.
    surplus:
        Hourly renewable surplus left after running deferred work and
        charging the battery, MW.
    charge_level:
        Battery energy content at the end of each hour, MWh.
    battery_spec:
        The battery that was operated.
    capacity_mw:
        The ``P_DC_MAX`` constraint.
    deferred_mwh:
        Total energy deferred out of its original hour.
    late_mwh:
        Deferred energy executed after its deadline (capacity-bound).
    unserved_mwh:
        Deferred energy still pending at year end (should be ~0 for sane
        configurations; conservation holds:
        ``shifted.total() + unserved == original.total()``).
    charged_mwh, discharged_mwh:
        Battery meter totals over the year.
    """

    shifted_demand: HourlySeries
    grid_import: HourlySeries
    surplus: HourlySeries
    charge_level: HourlySeries
    battery_spec: BatterySpec
    capacity_mw: float
    deferred_mwh: float
    late_mwh: float
    unserved_mwh: float
    charged_mwh: float
    discharged_mwh: float

    def equivalent_full_cycles(self) -> float:
        """Equivalent full battery cycles accumulated over the year."""
        usable = self.battery_spec.usable_mwh
        if usable == 0.0:
            return 0.0
        return self.discharged_mwh / usable

    def peak_power_mw(self) -> float:
        """Peak of the shifted demand trace."""
        return self.shifted_demand.max()


def simulate_combined(
    demand: HourlySeries,
    supply: HourlySeries,
    battery: BatterySpec,
    capacity_mw: float,
    flexible_ratio: float,
    deadline_hours: int = 24,
    initial_soc: float = 1.0,
) -> CombinedResult:
    """Run the battery-first combined heuristic over a year.

    Per hour, in priority order:

    1. Force-run queued work whose deadline has arrived (up to capacity).
    2. If renewables exceed the load: run queued deferred work from the
       surplus, then charge the battery, then count what's left as surplus.
    3. If the load exceeds renewables: discharge the battery first; only if
       a deficit remains, defer up to ``flexible_ratio`` of this hour's
       original demand (with a deadline ``deadline_hours`` ahead); import
       any remainder from the grid.

    Parameters mirror :func:`repro.scheduling.greedy.schedule_carbon_aware`
    plus the battery spec.  Setting ``battery.capacity_mwh = 0`` degenerates
    to (an online version of) CAS alone; ``flexible_ratio = 0`` degenerates
    to the battery-only simulation.
    """
    if demand.calendar != supply.calendar:
        raise ValueError("demand and supply must share a calendar")
    if not 0.0 <= flexible_ratio <= 1.0:
        raise ValueError(f"flexible_ratio must be in [0, 1], got {flexible_ratio}")
    if deadline_hours < 1:
        raise ValueError(f"deadline_hours must be >= 1, got {deadline_hours}")
    if capacity_mw < demand.max():
        raise ValueError(
            f"capacity {capacity_mw} MW below demand peak {demand.max():.3f} MW"
        )

    calendar = demand.calendar
    n_hours = calendar.n_hours
    demand_values = demand.values
    supply_values = supply.values

    pack = Battery(battery, initial_soc=initial_soc)
    queue = deque()  # (deadline_hour, mwh) in submission order
    queued_total = 0.0

    shifted = np.zeros(n_hours)
    grid_import = np.zeros(n_hours)
    surplus_out = np.zeros(n_hours)
    charge_level = np.zeros(n_hours)
    deferred_total = 0.0
    late_total = 0.0
    deferral_events = 0

    def run_queued(budget_mwh: float, now: int, overdue_only: bool) -> float:
        """Execute queued work up to ``budget_mwh``; return MWh executed."""
        nonlocal queued_total, late_total
        executed = 0.0
        while queue and budget_mwh - executed > _EPSILON_MWH:
            deadline, amount = queue[0]
            if overdue_only and deadline > now:
                break
            take = min(amount, budget_mwh - executed)
            executed += take
            queued_total -= take
            if deadline < now:
                late_total += take
            if take >= amount - _EPSILON_MWH:
                queue.popleft()
            else:
                queue[0] = (deadline, amount - take)
        return executed

    with span(
        "simulate_combined",
        capacity_mwh=battery.capacity_mwh,
        fwr=flexible_ratio,
        hours=n_hours,
    ):
        for hour in range(n_hours):
            load = demand_values[hour]

            # 1. Deadlines first: overdue work must run now, capacity permitting.
            headroom = capacity_mw - load
            if headroom > _EPSILON_MWH and queued_total > _EPSILON_MWH:
                load += run_queued(headroom, hour, overdue_only=True)

            gap = supply_values[hour] - load
            if gap > 0.0:
                # 2. Surplus: deferred work soaks it up before the battery does.
                headroom = capacity_mw - load
                budget = min(gap, headroom)
                if budget > _EPSILON_MWH and queued_total > _EPSILON_MWH:
                    ran = run_queued(budget, hour, overdue_only=False)
                    load += ran
                    gap = max(gap - ran, 0.0)
                absorbed = pack.charge(gap)
                surplus_out[hour] = gap - absorbed
            else:
                # 3. Deficit: battery first, then deferral, then the grid.
                deficit = -gap
                delivered = pack.discharge(deficit)
                deficit -= delivered
                if deficit > _EPSILON_MWH and flexible_ratio > 0.0:
                    deferrable = flexible_ratio * demand_values[hour]
                    deferred = min(deficit, deferrable)
                    if deferred > _EPSILON_MWH:
                        load -= deferred
                        deficit -= deferred
                        queue.append((hour + deadline_hours, deferred))
                        queued_total += deferred
                        deferred_total += deferred
                        deferral_events += 1
                grid_import[hour] = max(deficit, 0.0)

            shifted[hour] = load
            charge_level[hour] = pack.energy_mwh

    inc("combined_sims")
    inc("combined_sim_hours", n_hours)
    inc("schedule_deferrals", deferral_events)
    inc("combined_deferred_mwh", deferred_total)
    return CombinedResult(
        shifted_demand=HourlySeries(shifted, calendar, name="shifted demand"),
        grid_import=HourlySeries(grid_import, calendar, name="grid import"),
        surplus=HourlySeries(surplus_out, calendar, name="surplus"),
        charge_level=HourlySeries(charge_level, calendar, name="charge level"),
        battery_spec=battery,
        capacity_mw=capacity_mw,
        deferred_mwh=deferred_total,
        late_mwh=late_total,
        unserved_mwh=queued_total,
        charged_mwh=pack.charged_mwh,
        discharged_mwh=pack.discharged_mwh,
    )
