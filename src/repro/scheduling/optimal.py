"""LP-optimal within-day scheduling — an upper bound for the greedy CAS.

The paper chooses a greedy heuristic for carbon-aware scheduling.  How much
does that choice cost?  This module solves each day's shifting problem to
*provable optimality* as a small linear program, giving the tightest
possible benchmark for the greedy algorithm (``bench_greedy_vs_optimal.py``
reports the gap; it is small, which is the justification the paper leaves
implicit).

Per day, with hours ``h`` and original demand ``d``, supply ``s``:

    variables   m[i][j] >= 0   work moved from hour i to hour j
                t[h]    >= 0   unmet demand in hour h
    minimize    sum_h t[h]
    subject to  sum_j m[i][j] <= FWR * d[i]                 (flexibility)
                d'[j] = d[j] - out[j] + in[j] <= capacity    (P_DC_MAX)
                t[h] >= d'[h] - s[h]                        (deficit)

This is exactly the paper's "For each day, minimize sum_h {P_DC - P_Ren}"
objective, solved exactly instead of greedily.  Requires scipy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries import HOURS_PER_DAY, HourlySeries
from ..timeseries.stats import is_exact_zero

_H = HOURS_PER_DAY


def _solve_one_day(
    demand: np.ndarray,
    supply: np.ndarray,
    capacity_mw: float,
    flexible_ratio: float,
) -> np.ndarray:
    """Return the optimally shifted demand for one day (length 24)."""
    from scipy.optimize import linprog

    n_moves = _H * _H
    n_vars = n_moves + _H  # moves + deficit slack t

    # Objective: minimize sum of t.
    cost = np.zeros(n_vars)
    cost[n_moves:] = 1.0

    # Row blocks of A_ub x <= b_ub.
    rows = []
    rhs = []

    # (1) Flexibility: sum_j m[i][j] <= FWR * d[i], for each source hour i.
    for i in range(_H):
        row = np.zeros(n_vars)
        row[i * _H : (i + 1) * _H] = 1.0
        row[i * _H + i] = 0.0  # moving to yourself is a no-op; forbid below
        rows.append(row)
        rhs.append(flexible_ratio * demand[i])

    # (2) Capacity: d[j] - out[j] + in[j] <= capacity, for each hour j.
    for j in range(_H):
        row = np.zeros(n_vars)
        for i in range(_H):
            if i == j:
                continue
            row[i * _H + j] = 1.0  # inbound
            row[j * _H + i] = -1.0  # outbound
        rows.append(row)
        rhs.append(capacity_mw - demand[j])

    # (3) Deficit definition: d'[h] - s[h] - t[h] <= 0.
    for h in range(_H):
        row = np.zeros(n_vars)
        for i in range(_H):
            if i == h:
                continue
            row[i * _H + h] = 1.0
            row[h * _H + i] = -1.0
        row[n_moves + h] = -1.0
        rows.append(row)
        rhs.append(supply[h] - demand[h])

    # Bounds: m >= 0 (diagonal pinned to 0), t >= 0.
    bounds = []
    for i in range(_H):
        for j in range(_H):
            bounds.append((0.0, 0.0) if i == j else (0.0, None))
    bounds.extend((0.0, None) for _ in range(_H))

    result = linprog(
        cost,
        A_ub=np.array(rows),
        b_ub=np.array(rhs),
        bounds=bounds,
        method="highs",
    )
    if not result.success:  # pragma: no cover - defensive
        raise RuntimeError(f"day LP failed: {result.message}")

    moves = result.x[:n_moves].reshape(_H, _H)
    shifted = demand - moves.sum(axis=1) + moves.sum(axis=0)
    return shifted


@dataclass(frozen=True)
class OptimalScheduleResult:
    """Outcome of LP-optimal within-day scheduling over a year.

    Attributes mirror :class:`repro.scheduling.greedy.ScheduleResult`.
    """

    original_demand: HourlySeries
    shifted_demand: HourlySeries
    capacity_mw: float
    flexible_ratio: float

    def deficit_mwh(self, supply: HourlySeries) -> float:
        """Annual unmet-by-renewables energy under the optimal schedule."""
        return (self.shifted_demand - supply).positive_part().total()


def schedule_optimal(
    demand: HourlySeries,
    supply: HourlySeries,
    capacity_mw: float,
    flexible_ratio: float,
) -> OptimalScheduleResult:
    """Solve every day's shifting problem to optimality (needs scipy).

    Same contract as :func:`repro.scheduling.schedule_carbon_aware`; note
    that the LP optimizes *deficit* directly (the paper's stated objective),
    so it needs no carbon-intensity ranking signal.
    """
    if demand.calendar != supply.calendar:
        raise ValueError("demand and supply must share a calendar")
    if not 0.0 <= flexible_ratio <= 1.0:
        raise ValueError(f"flexible_ratio must be in [0, 1], got {flexible_ratio}")
    if capacity_mw < demand.max():
        raise ValueError(
            f"capacity {capacity_mw} MW below demand peak {demand.max():.3f} MW"
        )

    calendar = demand.calendar
    shifted = demand.values.copy()
    if flexible_ratio > 0.0:
        for day_slice in calendar.iter_days():
            day_demand = demand.values[day_slice]
            day_supply = supply.values[day_slice]
            # Skip days with no shortfall: the zero-move schedule is optimal.
            if np.all(day_demand <= day_supply):
                continue
            shifted[day_slice] = _solve_one_day(
                day_demand, day_supply, capacity_mw, flexible_ratio
            )

    return OptimalScheduleResult(
        original_demand=demand,
        shifted_demand=HourlySeries(shifted, calendar, name="optimally shifted demand"),
        capacity_mw=capacity_mw,
        flexible_ratio=flexible_ratio,
    )


def greedy_optimality_gap(
    demand: HourlySeries,
    supply: HourlySeries,
    intensity: HourlySeries,
    capacity_mw: float,
    flexible_ratio: float,
) -> float:
    """Greedy deficit over optimal deficit, minus one.

    0.0 means the greedy schedule is optimal; 0.05 means it leaves 5% more
    deficit on the table than the LP.
    """
    from .greedy import schedule_carbon_aware

    greedy = schedule_carbon_aware(demand, supply, intensity, capacity_mw, flexible_ratio)
    optimal = schedule_optimal(demand, supply, capacity_mw, flexible_ratio)
    greedy_deficit = (greedy.shifted_demand - supply).positive_part().total()
    optimal_deficit = optimal.deficit_mwh(supply)
    if is_exact_zero(optimal_deficit):
        if is_exact_zero(greedy_deficit):
            return 0.0
        raise ValueError("optimal schedule reaches zero deficit but greedy does not")
    return greedy_deficit / optimal_deficit - 1.0
