"""Server-capacity planning for demand response (§4.3, Fig. 12).

Shifting computation toward renewable-abundant hours piles load above the
original peak, so carbon-aware scheduling "may require additional server
capacity for sustained increases in computation when carbon-free/low-carbon
energy is abundant".  This module answers the two planning questions the
paper poses:

* Given a capacity limit, how much does CAS improve coverage?
  (:func:`deficit_after_scheduling`)
* How much extra capacity is needed to reach 24/7 coverage — Figure 12's
  19% to >100% range with all workloads flexible?
  (:func:`additional_capacity_for_full_coverage`)
"""

from __future__ import annotations

from ..timeseries import HourlySeries
from .greedy import schedule_carbon_aware
from ..timeseries.stats import is_exact_zero

#: Widest capacity expansion the search considers, as a multiple of the
#: original peak.  Fig. 12 tops out at "over 100%" additional capacity, i.e.
#: a bit above 2x; we search to 8x before declaring 24/7 unreachable.
MAX_CAPACITY_MULTIPLE = 8.0


def deficit_after_scheduling(
    demand: HourlySeries,
    supply: HourlySeries,
    intensity: HourlySeries,
    capacity_mw: float,
    flexible_ratio: float,
) -> float:
    """Annual unmet-by-renewables energy (MWh) after greedy CAS."""
    result = schedule_carbon_aware(demand, supply, intensity, capacity_mw, flexible_ratio)
    return (result.shifted_demand - supply).positive_part().total()


def additional_capacity_for_full_coverage(
    demand: HourlySeries,
    supply: HourlySeries,
    intensity: HourlySeries,
    flexible_ratio: float = 1.0,
    tolerance_mwh: float = 1.0,
    max_multiple: float = MAX_CAPACITY_MULTIPLE,
) -> float:
    """Smallest extra-capacity fraction giving zero deficit after CAS.

    Returns the additional capacity as a fraction of the original demand
    peak (0.19 means "+19% servers", Fig. 12's y-axis), or ``float('inf')``
    if even ``max_multiple`` times the peak cannot reach 24/7 coverage —
    e.g. on days with near-zero renewable supply, where no amount of
    shifting within the day helps.

    The search is a bisection on the capacity limit; the deficit after
    scheduling is monotonically non-increasing in capacity because any
    schedule feasible at a lower limit remains feasible at a higher one.
    """
    if tolerance_mwh <= 0:
        raise ValueError(f"tolerance_mwh must be positive, got {tolerance_mwh}")
    if max_multiple < 1.0:
        raise ValueError(f"max_multiple must be >= 1, got {max_multiple}")

    base_peak = demand.max()
    if is_exact_zero(base_peak):
        raise ValueError("demand trace is identically zero")

    def deficit(multiple: float) -> float:
        return deficit_after_scheduling(
            demand, supply, intensity, base_peak * multiple, flexible_ratio
        )

    if deficit(1.0) <= tolerance_mwh:
        return 0.0
    if deficit(max_multiple) > tolerance_mwh:
        return float("inf")

    low, high = 1.0, max_multiple
    # Bisect until the capacity bracket is tight to ~0.1% of the peak.
    while high - low > 1e-3:
        mid = (low + high) / 2.0
        if deficit(mid) > tolerance_mwh:
            low = mid
        else:
            high = mid
    return high - 1.0


def capacity_sweep(
    demand: HourlySeries,
    supply_grid: HourlySeries,
    intensity: HourlySeries,
    capacity_multiples: tuple,
    flexible_ratio: float,
) -> tuple:
    """Schedule at each capacity multiple; returns one result per multiple.

    Convenience wrapper for Fig. 12-style sweeps: all inputs fixed except
    ``P_DC_MAX``.
    """
    results = []
    base_peak = demand.max()
    for multiple in capacity_multiples:
        if multiple < 1.0:
            raise ValueError(f"capacity multiples must be >= 1, got {multiple}")
        results.append(
            schedule_carbon_aware(
                demand, supply_grid, intensity, base_peak * multiple, flexible_ratio
            )
        )
    return tuple(results)


def servers_for_extra_capacity(
    n_servers: int, additional_fraction: float
) -> int:
    """Number of extra servers implied by an additional-capacity fraction.

    Rounds up: a fraction of a server is still a server to manufacture, and
    the embodied model charges per physical machine.
    """
    import math

    if n_servers <= 0:
        raise ValueError(f"n_servers must be positive, got {n_servers}")
    if additional_fraction < 0:
        raise ValueError(
            f"additional_fraction must be non-negative, got {additional_fraction}"
        )
    return math.ceil(n_servers * additional_fraction)
