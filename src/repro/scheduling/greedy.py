"""The paper's greedy carbon-aware scheduling algorithm (§4.3, Fig. 11).

    "Carbon Explorer estimates the potential benefits of carbon aware
    workload scheduling using a greedy algorithm.  The algorithm takes two
    customizable input constraints: datacenter capacity and flexible
    workload ratio for each hour of the day.  Given these two constraints,
    flexible workloads are moved from times of highest carbon intensity to
    times of lowest intensity until all flexible workloads have been moved
    or all datacenter servers have been used for the given hour."

The schedule is computed offline, one day at a time (the paper's goal is
"For each day, minimize sum_h {P_DC(h) - P_Ren(h)}" subject to
``P_DC(h) < P_DC_MAX`` with ``P_DC(h) x FWR`` allowed to shift).  Within a
day we repeatedly move flexible power from the deficit hour with the highest
grid carbon intensity to the surplus hour with the lowest, until no move can
reduce the day's unmet demand.

The year loop lives in :mod:`repro.kernels.greedy` (hour orderings argsorted
for all days at once, no-move days skipped without entering the day loop);
this module validates inputs and wraps the kernel's arrays into the result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from ..kernels.greedy import schedule_run
from ..obs import inc, span
from ..timeseries import HOURS_PER_DAY, HourlySeries
from ..timeseries.stats import is_exact_zero

#: FWR may be one number for every hour or a 24-value hour-of-day profile
#: (the paper: "flexible workload ratio for each hour of the day").
FlexibleRatio = Union[float, Sequence[float]]


def _ratio_profile(flexible_ratio: FlexibleRatio) -> np.ndarray:
    """Normalize an FWR argument to a 24-value hour-of-day profile."""
    if np.isscalar(flexible_ratio):
        profile = np.full(HOURS_PER_DAY, float(flexible_ratio))
    else:
        profile = np.asarray(flexible_ratio, dtype=float)
        if profile.shape != (HOURS_PER_DAY,):
            raise ValueError(
                f"flexible_ratio profile must have 24 values, got shape {profile.shape}"
            )
    if profile.min() < 0.0 or profile.max() > 1.0:
        raise ValueError(
            f"flexible_ratio values must be in [0, 1], got "
            f"[{profile.min()}, {profile.max()}]"
        )
    return profile


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of carbon-aware scheduling over a year.

    Attributes
    ----------
    original_demand:
        The demand trace before shifting, MW.
    shifted_demand:
        The demand trace after shifting, MW.  Same total energy.
    moved_mwh:
        Total energy moved across hours over the year.
    capacity_mw:
        The ``P_DC_MAX`` constraint that applied.
    flexible_ratio:
        The FWR constraint that applied — mean over the hour-of-day profile
        when a 24-value profile was given.
    """

    original_demand: HourlySeries
    shifted_demand: HourlySeries
    moved_mwh: float
    capacity_mw: float
    flexible_ratio: float

    @property
    def peak_power_mw(self) -> float:
        """Peak of the shifted demand — what the fleet must now support."""
        return self.shifted_demand.max()

    def moved_fraction(self) -> float:
        """Moved energy as a fraction of total annual demand."""
        total = self.original_demand.total()
        if is_exact_zero(total):
            return 0.0
        return self.moved_mwh / total

    def additional_capacity_fraction(self) -> float:
        """Extra server capacity implied by the shifted peak (§4.3).

        Measured against the original demand peak: shifting computation into
        renewable-abundant hours piles load above the old peak, and those
        hours need additional provisioned servers.
        """
        base_peak = self.original_demand.max()
        if is_exact_zero(base_peak):
            return 0.0
        return max(self.peak_power_mw - base_peak, 0.0) / base_peak


def schedule_carbon_aware(
    demand: HourlySeries,
    supply: HourlySeries,
    intensity: HourlySeries,
    capacity_mw: float,
    flexible_ratio: FlexibleRatio,
) -> ScheduleResult:
    """Run the paper's greedy CAS over a full year.

    Parameters
    ----------
    demand:
        Hourly datacenter power, MW.
    supply:
        Hourly renewable supply available to the datacenter, MW.
    intensity:
        Hourly grid carbon intensity (gCO2eq/kWh) used to rank hours.
    capacity_mw:
        Input constraint 1 — maximum datacenter power (``P_DC_MAX``).  Must
        be at least the demand peak (the unshifted schedule must be
        feasible).
    flexible_ratio:
        Input constraint 2 — FWR, the fraction of each hour's load that may
        move (0 disables scheduling; 1 makes everything movable).  Either a
        single number, or a 24-value hour-of-day profile (the paper's
        "flexible workload ratio for each hour of the day"): e.g. more
        batch work is deferrable overnight than at peak.

    Returns
    -------
    ScheduleResult
        With a shifted demand trace of identical total energy.
    """
    if demand.calendar != supply.calendar or demand.calendar != intensity.calendar:
        raise ValueError("demand, supply, and intensity must share a calendar")
    ratio_profile = _ratio_profile(flexible_ratio)
    if capacity_mw < demand.max():
        raise ValueError(
            f"capacity {capacity_mw} MW below demand peak {demand.max():.3f} MW: "
            "the unshifted schedule would already violate P_DC_MAX"
        )

    calendar = demand.calendar
    with span(
        "schedule_carbon_aware",
        fwr=float(ratio_profile.mean()),
        days=calendar.n_days,
    ):
        shifted, moved_total = schedule_run(
            demand.values,
            supply.values,
            intensity.values,
            capacity_mw,
            ratio_profile,
        )

    inc("schedules_run")
    inc("schedule_days", calendar.n_days)
    inc("schedule_moved_mwh", moved_total)
    return ScheduleResult(
        original_demand=demand,
        shifted_demand=HourlySeries(shifted, calendar, name="shifted demand"),
        moved_mwh=moved_total,
        capacity_mw=capacity_mw,
        flexible_ratio=float(ratio_profile.mean()),
    )
