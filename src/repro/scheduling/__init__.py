"""Carbon-aware scheduling: greedy CAS, capacity planning, combined heuristic."""

from .capacity import (
    MAX_CAPACITY_MULTIPLE,
    additional_capacity_for_full_coverage,
    capacity_sweep,
    deficit_after_scheduling,
    servers_for_extra_capacity,
)
from .combined import CombinedResult, simulate_combined
from .geographic import (
    FleetSite,
    MigrationResult,
    fleet_sites_from_states,
    migrate_load,
)
from .greedy import ScheduleResult, schedule_carbon_aware
from .optimal import (
    OptimalScheduleResult,
    greedy_optimality_gap,
    schedule_optimal,
)
from .tiered import (
    NO_SLO_DEADLINE_HOURS,
    TierPolicy,
    TieredResult,
    policies_from_figure10,
    simulate_tiered,
)

__all__ = [
    "MAX_CAPACITY_MULTIPLE",
    "additional_capacity_for_full_coverage",
    "capacity_sweep",
    "deficit_after_scheduling",
    "servers_for_extra_capacity",
    "CombinedResult",
    "FleetSite",
    "MigrationResult",
    "fleet_sites_from_states",
    "migrate_load",
    "simulate_combined",
    "ScheduleResult",
    "schedule_carbon_aware",
    "OptimalScheduleResult",
    "greedy_optimality_gap",
    "schedule_optimal",
    "NO_SLO_DEADLINE_HOURS",
    "TierPolicy",
    "TieredResult",
    "policies_from_figure10",
    "simulate_tiered",
]
