"""Geographic load migration across a datacenter fleet (extension).

The paper's §6 cites load migration between datacenters as a complementary
lever to temporal shifting ("Mitigating curtailment and carbon emissions
through load migration between data centers", Zheng et al.).  Carbon
Explorer's released version schedules each site in isolation; this module
adds the fleet view: in every hour, flexible load moves from sites whose
renewables fall short to sites with surplus renewable supply and server
headroom, paying a configurable energy overhead for moving the work (data
egress, state transfer, cache warm-up).

The policy is greedy and hour-local: donors are served worst-deficit-first,
receivers best-surplus-first — consistent with the paper's greedy temporal
scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from ..timeseries import HourlySeries
from ..timeseries.stats import is_exact_zero

_EPSILON_MW = 1e-9


@dataclass(frozen=True)
class FleetSite:
    """One datacenter in a geographically distributed fleet.

    Attributes
    ----------
    name:
        Site label (e.g. the Table-1 state code).
    demand:
        Hourly power demand, MW.
    supply:
        Hourly renewable supply from the site's investments, MW.
    capacity_mw:
        Maximum power the site may draw (``P_DC_MAX``); bounds how much
        migrated load it can absorb.
    """

    name: str
    demand: HourlySeries
    supply: HourlySeries
    capacity_mw: float

    def __post_init__(self) -> None:
        if self.demand.calendar != self.supply.calendar:
            raise ValueError(f"{self.name}: demand and supply on different calendars")
        if self.capacity_mw < self.demand.max():
            raise ValueError(
                f"{self.name}: capacity {self.capacity_mw} MW below demand peak "
                f"{self.demand.max():.3f} MW"
            )


@dataclass(frozen=True)
class MigrationResult:
    """Outcome of one year of fleet-wide load migration.

    Attributes
    ----------
    shifted_demand:
        Per-site hourly demand after migration, MW.
    migrated_mwh:
        Energy's worth of work moved between sites over the year (measured
        at the donor).
    overhead_mwh:
        Extra energy consumed by migration itself (receivers run migrated
        work at ``1 + overhead``).
    deficit_before_mwh / deficit_after_mwh:
        Fleet-total unmet-by-renewables energy without/with migration.
    """

    shifted_demand: Mapping[str, HourlySeries]
    migrated_mwh: float
    overhead_mwh: float
    deficit_before_mwh: float
    deficit_after_mwh: float

    def deficit_reduction(self) -> float:
        """Fraction of the fleet deficit removed by migration."""
        if is_exact_zero(self.deficit_before_mwh):
            return 0.0
        return 1.0 - self.deficit_after_mwh / self.deficit_before_mwh


def migrate_load(
    sites: Sequence[FleetSite],
    flexible_ratio: float,
    migration_overhead: float = 0.02,
) -> MigrationResult:
    """Greedy hour-by-hour load migration across a fleet.

    Per hour: every site with a renewable deficit may donate up to
    ``flexible_ratio`` of its original demand; every site with a renewable
    surplus may absorb work up to ``min(surplus, capacity headroom)``.
    Donors are processed worst-deficit-first; each donor fills receivers in
    descending-surplus order.  Migrated work consumes
    ``(1 + migration_overhead)`` times its energy at the receiver.

    Parameters
    ----------
    sites:
        At least two fleet sites on the same calendar.
    flexible_ratio:
        Fraction of each hour's load that may migrate (the FWR analogue).
    migration_overhead:
        Relative energy cost of moving work (0.02 = 2%).
    """
    if len(sites) < 2:
        raise ValueError("fleet migration needs at least two sites")
    if not 0.0 <= flexible_ratio <= 1.0:
        raise ValueError(f"flexible_ratio must be in [0, 1], got {flexible_ratio}")
    if migration_overhead < 0.0:
        raise ValueError(
            f"migration_overhead must be non-negative, got {migration_overhead}"
        )
    names = [site.name for site in sites]
    if len(set(names)) != len(names):
        raise ValueError(f"site names must be unique, got {names}")
    calendar = sites[0].demand.calendar
    for site in sites[1:]:
        if site.demand.calendar != calendar:
            raise ValueError("all sites must share one calendar")

    n_sites = len(sites)
    n_hours = calendar.n_hours
    demand = np.stack([site.demand.values for site in sites])
    supply = np.stack([site.supply.values for site in sites])
    capacity = np.array([site.capacity_mw for site in sites])

    shifted = demand.copy()
    migrated_total = 0.0
    overhead_total = 0.0
    cost_factor = 1.0 + migration_overhead

    for hour in range(n_hours):
        gap = supply[:, hour] - shifted[:, hour]
        donors = [i for i in range(n_sites) if gap[i] < -_EPSILON_MW]
        receivers = [i for i in range(n_sites) if gap[i] > _EPSILON_MW]
        if not donors or not receivers:
            continue
        donors.sort(key=lambda i: gap[i])            # worst deficit first
        receivers.sort(key=lambda i: -gap[i])        # biggest surplus first
        movable = demand[:, hour] * flexible_ratio   # budget from original load

        for donor in donors:
            deficit = shifted[donor, hour] - supply[donor, hour]
            budget = min(deficit, movable[donor])
            if budget <= _EPSILON_MW:
                continue
            for receiver in receivers:
                if budget <= _EPSILON_MW:
                    break
                surplus = supply[receiver, hour] - shifted[receiver, hour]
                headroom = capacity[receiver] - shifted[receiver, hour]
                # The receiver runs migrated work at cost_factor; size the
                # donated amount so the *expanded* work fits both limits.
                absorbable = min(surplus, headroom) / cost_factor
                amount = min(budget, absorbable)
                if amount <= _EPSILON_MW:
                    continue
                shifted[donor, hour] -= amount
                shifted[receiver, hour] += amount * cost_factor
                migrated_total += amount
                overhead_total += amount * (cost_factor - 1.0)
                budget -= amount

    deficit_before = float(np.clip(demand - supply, 0.0, None).sum())
    deficit_after = float(np.clip(shifted - supply, 0.0, None).sum())
    shifted_map: Dict[str, HourlySeries] = {
        site.name: HourlySeries(shifted[i], calendar, name=f"{site.name} shifted")
        for i, site in enumerate(sites)
    }
    return MigrationResult(
        shifted_demand=shifted_map,
        migrated_mwh=migrated_total,
        overhead_mwh=overhead_total,
        deficit_before_mwh=deficit_before,
        deficit_after_mwh=deficit_after,
    )


def fleet_sites_from_states(
    states: Sequence[str],
    investment_multiple: float = 6.0,
    capacity_multiple: float = 1.5,
    year: int = 2020,
    seed: int = 0,
) -> Tuple[FleetSite, ...]:
    """Build a migration fleet from Table-1 site codes.

    Each site gets a renewable investment of ``investment_multiple`` times
    its average power (split across the local grid's available resources)
    and a capacity cap of ``capacity_multiple`` times its demand peak.
    """
    from ..core.evaluate import build_site_context
    from ..grid import RenewableInvestment, projected_supply

    if investment_multiple < 0:
        raise ValueError("investment_multiple must be non-negative")
    if capacity_multiple < 1.0:
        raise ValueError("capacity_multiple must be >= 1")

    sites = []
    for state in states:
        context = build_site_context(state, year=year, seed=seed)
        total = investment_multiple * context.demand.avg_power_mw
        if context.supports_solar and context.supports_wind:
            investment = RenewableInvestment(solar_mw=total / 2, wind_mw=total / 2)
        elif context.supports_wind:
            investment = RenewableInvestment(wind_mw=total)
        else:
            investment = RenewableInvestment(solar_mw=total)
        sites.append(
            FleetSite(
                name=state,
                demand=context.demand.power,
                supply=projected_supply(context.grid, investment),
                capacity_mw=context.demand.power.max() * capacity_multiple,
            )
        )
    return tuple(sites)
