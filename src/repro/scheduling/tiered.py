"""Tier-aware scheduling extension (composing Fig. 10 with the scheduler).

The paper's greedy algorithm treats all flexible work as one pool with one
deadline.  Real fleets are tiered: Fig. 10 splits data-processing work into
+/-1 h, +/-2 h, +/-4 h, daily, and no-SLO tiers.  This extension runs the
same battery-first forward pass as :mod:`repro.scheduling.combined` but with
one deferral queue per tier, each with its own deadline window, so tighter
tiers get force-executed sooner and contribute less shifting range.

This module is an *extension* of the paper (its §6 notes a future
implementation "would benefit from prior schedulers"); the benchmark
``bench_ablations.py`` compares it against the single-pool model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..battery import Battery, BatterySpec
from ..datacenter.workloads import WORKLOAD_TIERS, WorkloadTier
from ..timeseries import HourlySeries

_EPSILON_MWH = 1e-9

#: Deadline assumed for "No SLO" work: a week keeps it finite so energy is
#: conserved within the simulated year.
NO_SLO_DEADLINE_HOURS = 168


@dataclass(frozen=True)
class TierPolicy:
    """Shiftable share and deadline window for one workload tier.

    Attributes
    ----------
    name:
        Label for reporting.
    ratio:
        Fraction of each hour's total load in this tier that may defer.
    deadline_hours:
        Hours after submission by which deferred work must run.
    """

    name: str
    ratio: float
    deadline_hours: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.ratio <= 1.0:
            raise ValueError(f"{self.name}: ratio must be in [0, 1], got {self.ratio}")
        if self.deadline_hours < 1:
            raise ValueError(
                f"{self.name}: deadline_hours must be >= 1, got {self.deadline_hours}"
            )


def policies_from_figure10(
    fleet_fraction: float = 0.075,
    tiers: Sequence[WorkloadTier] = WORKLOAD_TIERS,
) -> Tuple[TierPolicy, ...]:
    """Build tier policies from the Fig. 10 breakdown.

    Each tier's shiftable ratio is its share of data-processing work times
    the data-processing share of the fleet; its deadline is its SLO window
    (the "Daily" tier gets 24 h, "No SLO" gets a week).
    """
    if not 0.0 <= fleet_fraction <= 1.0:
        raise ValueError(f"fleet_fraction must be in [0, 1], got {fleet_fraction}")
    policies = []
    for tier in tiers:
        deadline = (
            tier.slo_window_hours
            if tier.slo_window_hours is not None
            else NO_SLO_DEADLINE_HOURS
        )
        policies.append(
            TierPolicy(
                name=tier.name,
                ratio=fleet_fraction * tier.share,
                deadline_hours=deadline,
            )
        )
    return tuple(policies)


@dataclass(frozen=True)
class TieredResult:
    """Outcome of tier-aware combined scheduling.

    Mirrors :class:`repro.scheduling.combined.CombinedResult` with per-tier
    deferral accounting.
    """

    shifted_demand: HourlySeries
    grid_import: HourlySeries
    surplus: HourlySeries
    charge_level: HourlySeries
    battery_spec: BatterySpec
    capacity_mw: float
    deferred_mwh_by_tier: Tuple[float, ...]
    late_mwh: float
    unserved_mwh: float
    charged_mwh: float
    discharged_mwh: float

    @property
    def deferred_mwh(self) -> float:
        """Total energy deferred across all tiers."""
        return sum(self.deferred_mwh_by_tier)


def simulate_tiered(
    demand: HourlySeries,
    supply: HourlySeries,
    battery: BatterySpec,
    capacity_mw: float,
    policies: Sequence[TierPolicy],
    initial_soc: float = 1.0,
) -> TieredResult:
    """Battery-first forward pass with one deferral queue per tier.

    On a deficit the battery discharges first; the residual defers across
    tiers in *loosest-deadline-first* order (daily work absorbs shifts
    before +/-1 h work, minimizing SLO pressure).  On a surplus, queued work
    runs in *tightest-deadline-first* order before the battery charges.
    """
    if demand.calendar != supply.calendar:
        raise ValueError("demand and supply must share a calendar")
    if capacity_mw < demand.max():
        raise ValueError(
            f"capacity {capacity_mw} MW below demand peak {demand.max():.3f} MW"
        )
    if not policies:
        raise ValueError("need at least one tier policy")
    if sum(p.ratio for p in policies) > 1.0 + 1e-12:
        raise ValueError("tier ratios sum above 1: more deferrable than exists")

    calendar = demand.calendar
    n_hours = calendar.n_hours
    demand_values = demand.values
    supply_values = supply.values

    pack = Battery(battery, initial_soc=initial_soc)
    n_tiers = len(policies)
    queues = [deque() for _ in range(n_tiers)]
    queued_totals = [0.0] * n_tiers
    deferred_totals = [0.0] * n_tiers
    late_total = 0.0

    # Deficit-side deferral order: loosest deadline first.
    defer_order = sorted(range(n_tiers), key=lambda i: -policies[i].deadline_hours)
    # Surplus-side execution order: tightest deadline first.
    run_order = sorted(range(n_tiers), key=lambda i: policies[i].deadline_hours)

    shifted = np.zeros(n_hours)
    grid_import = np.zeros(n_hours)
    surplus_out = np.zeros(n_hours)
    charge_level = np.zeros(n_hours)

    def run_tier(tier: int, budget_mwh: float, now: int, overdue_only: bool) -> float:
        nonlocal late_total
        queue = queues[tier]
        executed = 0.0
        while queue and budget_mwh - executed > _EPSILON_MWH:
            deadline, amount = queue[0]
            if overdue_only and deadline > now:
                break
            take = min(amount, budget_mwh - executed)
            executed += take
            queued_totals[tier] -= take
            if deadline < now:
                late_total += take
            if take >= amount - _EPSILON_MWH:
                queue.popleft()
            else:
                queue[0] = (deadline, amount - take)
        return executed

    for hour in range(n_hours):
        load = demand_values[hour]

        # Deadlines first, tightest tiers first.
        for tier in run_order:
            headroom = capacity_mw - load
            if headroom <= _EPSILON_MWH:
                break
            if queued_totals[tier] > _EPSILON_MWH:
                load += run_tier(tier, headroom, hour, overdue_only=True)

        gap = supply_values[hour] - load
        if gap > 0.0:
            for tier in run_order:
                budget = min(gap, capacity_mw - load)
                if budget <= _EPSILON_MWH:
                    break
                if queued_totals[tier] > _EPSILON_MWH:
                    ran = run_tier(tier, budget, hour, overdue_only=False)
                    load += ran
                    gap = max(gap - ran, 0.0)
            absorbed = pack.charge(gap)
            surplus_out[hour] = gap - absorbed
        else:
            deficit = -gap
            delivered = pack.discharge(deficit)
            deficit -= delivered
            for tier in defer_order:
                if deficit <= _EPSILON_MWH:
                    break
                policy = policies[tier]
                deferred = min(deficit, policy.ratio * demand_values[hour])
                if deferred > _EPSILON_MWH:
                    load -= deferred
                    deficit -= deferred
                    queues[tier].append((hour + policy.deadline_hours, deferred))
                    queued_totals[tier] += deferred
                    deferred_totals[tier] += deferred
            grid_import[hour] = max(deficit, 0.0)

        shifted[hour] = load
        charge_level[hour] = pack.energy_mwh

    return TieredResult(
        shifted_demand=HourlySeries(shifted, calendar, name="shifted demand"),
        grid_import=HourlySeries(grid_import, calendar, name="grid import"),
        surplus=HourlySeries(surplus_out, calendar, name="surplus"),
        charge_level=HourlySeries(charge_level, calendar, name="charge level"),
        battery_spec=battery,
        capacity_mw=capacity_mw,
        deferred_mwh_by_tier=tuple(deferred_totals),
        late_mwh=late_total,
        unserved_mwh=sum(queued_totals),
        charged_mwh=pack.charged_mwh,
        discharged_mwh=pack.discharged_mwh,
    )
