"""Carbon Explorer reproduction — carbon-aware datacenter design exploration.

A from-scratch Python implementation of the framework described in
"Carbon Explorer: A Holistic Framework for Designing Carbon Aware
Datacenters" (Acun et al., ASPLOS 2023).  The public API is re-exported
here; :class:`CarbonExplorer` is the main entry point:

>>> from repro import CarbonExplorer, Strategy
>>> explorer = CarbonExplorer("UT")          # Utah datacenter, year 2020
>>> round(explorer.avg_power_mw)             # doctest: +SKIP
19

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .battery import LFP, Battery, BatterySpec, CellChemistry, simulate_battery
from .carbon import EmbodiedCarbonModel, SupplyScenario
from .core import (
    CarbonExplorer,
    DesignEvaluation,
    DesignPoint,
    DesignSpace,
    DesignSpaceError,
    OptimizationResult,
    SiteContext,
    Strategy,
    build_site_context,
    coverage_percent,
    default_design_space,
    evaluate_design,
    hourly_coverage_fraction,
    knee_point,
    optimize,
    optimize_all_strategies,
    optimize_fleet,
    pareto_frontier,
    renewable_coverage,
)
from .datacenter import (
    DATACENTER_SITES,
    SITE_ORDER,
    DatacenterSite,
    FlexibilityModel,
    UtilizationProfile,
    get_site,
    regional_investment,
)
from .grid import (
    BALANCING_AUTHORITIES,
    EnergySource,
    GridDataset,
    RenewableClass,
    RenewableInvestment,
    generate_grid_dataset,
    get_authority,
    projected_supply,
)
from . import obs, resilience
from .resilience import (
    CheckpointError,
    CheckpointMismatchError,
    FaultPlan,
    RetryPolicy,
    SweepInterrupted,
)
from .obs import (
    ProgressTicker,
    configure_logging,
    disable_metrics,
    disable_tracing,
    enable_metrics,
    enable_tracing,
    get_logger,
    metrics_snapshot,
    render_metrics,
    render_trace,
    reset_metrics,
    reset_tracing,
    save_metrics,
    save_trace,
    span,
)
from .scheduling import (
    schedule_carbon_aware,
    simulate_combined,
)
from .timeseries import HourlySeries, YearCalendar

__version__ = "1.0.0"

__all__ = [
    "LFP",
    "Battery",
    "BatterySpec",
    "CellChemistry",
    "simulate_battery",
    "EmbodiedCarbonModel",
    "SupplyScenario",
    "CarbonExplorer",
    "DesignEvaluation",
    "DesignPoint",
    "DesignSpace",
    "DesignSpaceError",
    "OptimizationResult",
    "SiteContext",
    "Strategy",
    "build_site_context",
    "coverage_percent",
    "default_design_space",
    "evaluate_design",
    "hourly_coverage_fraction",
    "knee_point",
    "optimize",
    "optimize_all_strategies",
    "optimize_fleet",
    "pareto_frontier",
    "renewable_coverage",
    "DATACENTER_SITES",
    "SITE_ORDER",
    "DatacenterSite",
    "FlexibilityModel",
    "UtilizationProfile",
    "get_site",
    "regional_investment",
    "BALANCING_AUTHORITIES",
    "EnergySource",
    "GridDataset",
    "RenewableClass",
    "RenewableInvestment",
    "generate_grid_dataset",
    "get_authority",
    "projected_supply",
    "schedule_carbon_aware",
    "simulate_combined",
    "HourlySeries",
    "YearCalendar",
    "obs",
    "resilience",
    "CheckpointError",
    "CheckpointMismatchError",
    "FaultPlan",
    "RetryPolicy",
    "SweepInterrupted",
    "ProgressTicker",
    "configure_logging",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "enable_tracing",
    "get_logger",
    "metrics_snapshot",
    "render_metrics",
    "render_trace",
    "reset_metrics",
    "reset_tracing",
    "save_metrics",
    "save_trace",
    "span",
    "__version__",
]
