"""Battery capacity fade over multi-year operation.

The paper treats battery lifetime as a cycle budget (§5.1): the pack dies
after its chemistry's cycle life.  Real packs fade gradually — capacity
declines with both throughput (cycle aging) and time (calendar aging) and
the pack is retired at an end-of-life threshold, conventionally 80% of
nameplate.  This module adds that refinement so multi-year planning
(:mod:`repro.carbon.horizon`) can model declining usable storage and
replacement timing instead of a cliff.

The model is deliberately simple and conservative: both aging terms are
linear, sized so that a pack reaches the end-of-life threshold exactly when
its cycle budget (at the operating DoD) or its calendar cap runs out —
consistent with the §5.1 numbers by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from .chemistry import CALENDAR_LIFE_CAP_YEARS
from .clc import BatterySpec

#: Conventional end-of-life threshold: the pack is replaced when usable
#: capacity falls to this fraction of nameplate.
END_OF_LIFE_FRACTION = 0.80


@dataclass(frozen=True)
class DegradationModel:
    """Linear cycle + calendar capacity fade for a battery installation.

    Attributes
    ----------
    spec:
        The pack being aged (its chemistry sets the cycle budget).
    end_of_life_fraction:
        Remaining-capacity fraction at which the pack is retired.
    """

    spec: BatterySpec
    end_of_life_fraction: float = END_OF_LIFE_FRACTION

    def __post_init__(self) -> None:
        if not 0.0 < self.end_of_life_fraction < 1.0:
            raise ValueError(
                f"end_of_life_fraction must be in (0, 1), got {self.end_of_life_fraction}"
            )
        if self.spec.capacity_mwh <= 0:
            raise ValueError("degradation model needs a positive-capacity pack")

    @property
    def total_fade(self) -> float:
        """Capacity fraction lost over the pack's whole service life."""
        return 1.0 - self.end_of_life_fraction

    @property
    def fade_per_cycle(self) -> float:
        """Capacity fraction lost per equivalent full cycle.

        Sized so that exhausting the §5.1 cycle budget at this DoD uses up
        exactly the fade budget.
        """
        budget = self.spec.chemistry.cycle_life(self.spec.depth_of_discharge)
        return self.total_fade / budget

    @property
    def fade_per_year(self) -> float:
        """Calendar fade per idle year (reaches end of life at the 27-year
        calendar cap even with zero cycling)."""
        return self.total_fade / CALENDAR_LIFE_CAP_YEARS

    def remaining_fraction(self, cycles: float, years: float) -> float:
        """Capacity fraction left after ``cycles`` and ``years`` of service.

        Cycle and calendar aging accumulate independently; the result is
        floored at zero (a fully dead pack).
        """
        if cycles < 0 or years < 0:
            raise ValueError("cycles and years must be non-negative")
        fade = cycles * self.fade_per_cycle + years * self.fade_per_year
        return max(1.0 - fade, 0.0)

    def remaining_capacity_mwh(self, cycles: float, years: float) -> float:
        """Usable nameplate (MWh) left after the given service."""
        return self.spec.capacity_mwh * self.remaining_fraction(cycles, years)

    def is_end_of_life(self, cycles: float, years: float) -> bool:
        """Whether the pack should be replaced."""
        return self.remaining_fraction(cycles, years) <= self.end_of_life_fraction

    def service_years(self, cycles_per_year: float) -> float:
        """Years until end of life at a steady duty cycle.

        Solves ``cycles_per_year * t * fade_per_cycle + t * fade_per_year =
        total_fade`` for ``t``.
        """
        if cycles_per_year < 0:
            raise ValueError(f"cycles_per_year must be non-negative, got {cycles_per_year}")
        rate = cycles_per_year * self.fade_per_cycle + self.fade_per_year
        return self.total_fade / rate
