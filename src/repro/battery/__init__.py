"""Battery substrate: LFP chemistry, the C/L/C model, and hourly simulation."""

from .chemistry import (
    CALENDAR_LIFE_CAP_YEARS,
    LFP,
    LFP_CYCLE_LIFE_POINTS,
    SODIUM_ION,
    CellChemistry,
)
from .clc import Battery, BatterySpec
from .degradation import END_OF_LIFE_FRACTION, DegradationModel
from .dual_use import (
    DualUseOutcome,
    dual_use_spec,
    reserve_for_ride_through,
    simulate_dual_use,
)
from .peak_shaving import (
    PeakShavingResult,
    minimum_shavable_threshold,
    simulate_peak_shaving,
)
from ..kernels.battery import BatterySeed
from .simulator import (
    BatterySimResult,
    capacity_for_full_coverage,
    simulate_battery,
)

__all__ = [
    "CALENDAR_LIFE_CAP_YEARS",
    "LFP",
    "LFP_CYCLE_LIFE_POINTS",
    "SODIUM_ION",
    "CellChemistry",
    "Battery",
    "BatterySpec",
    "END_OF_LIFE_FRACTION",
    "DegradationModel",
    "DualUseOutcome",
    "dual_use_spec",
    "reserve_for_ride_through",
    "simulate_dual_use",
    "PeakShavingResult",
    "minimum_shavable_threshold",
    "simulate_peak_shaving",
    "BatterySeed",
    "BatterySimResult",
    "capacity_for_full_coverage",
    "simulate_battery",
]
