"""Dual-use batteries: resilience reserve + carbon headroom (paper §2).

Datacenters already own batteries — but for uptime, not carbon: "they do
deploy batteries to ensure system resilience and shave power peaks".  A
carbon-aware operator doesn't get to drain the backup pack to zero chasing
renewables; some hours of ride-through energy must stay reserved for an
outage at all times.

This module models that constraint by mapping a resilience requirement
(hours of average load that must always remain stored) onto the C/L/C
model's depth-of-discharge floor: the carbon policy may only cycle the
energy *above* the reserve.  The interesting question — answered by
``bench_dual_use.py`` — is how much carbon benefit survives at a given
reserve, i.e. what the marginal carbon value of each reserved hour is.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..timeseries import HourlySeries
from .chemistry import LFP, CellChemistry
from .clc import BatterySpec
from .simulator import BatterySimResult, simulate_battery


def dual_use_spec(
    capacity_mwh: float,
    reserve_mwh: float,
    chemistry: CellChemistry = LFP,
) -> BatterySpec:
    """A battery whose bottom ``reserve_mwh`` is never cycled.

    The reserve becomes the C/L/C DoD floor, so every invariant the battery
    model enforces (never discharging below the floor) applies to the
    resilience energy automatically.

    Raises
    ------
    ValueError
        If the reserve doesn't fit in the pack (a reserve equal to the full
        capacity leaves nothing to cycle and is also rejected — that pack
        is a pure UPS, not a dual-use asset).
    """
    if capacity_mwh <= 0:
        raise ValueError(f"capacity must be positive, got {capacity_mwh}")
    if reserve_mwh < 0:
        raise ValueError(f"reserve must be non-negative, got {reserve_mwh}")
    if reserve_mwh >= capacity_mwh:
        raise ValueError(
            f"reserve {reserve_mwh} MWh leaves no cyclable energy in a "
            f"{capacity_mwh} MWh pack"
        )
    depth = 1.0 - reserve_mwh / capacity_mwh
    return BatterySpec(
        capacity_mwh=capacity_mwh, chemistry=chemistry, depth_of_discharge=depth
    )


def reserve_for_ride_through(
    demand: HourlySeries, ride_through_hours: float
) -> float:
    """Energy (MWh) needed to ride through an outage of the given length.

    Sized against *peak* demand — an outage does not wait for a low-load
    hour — including the discharge-efficiency margin.
    """
    if ride_through_hours < 0:
        raise ValueError(
            f"ride_through_hours must be non-negative, got {ride_through_hours}"
        )
    return demand.max() * ride_through_hours / LFP.discharge_efficiency


@dataclass(frozen=True)
class DualUseOutcome:
    """Carbon operation of a pack at one resilience-reserve level.

    Attributes
    ----------
    spec:
        The dual-use pack (reserve encoded as the DoD floor).
    reserve_mwh:
        Energy held back for outages.
    result:
        The year of carbon-driven operation above the reserve.
    """

    spec: BatterySpec
    reserve_mwh: float
    result: BatterySimResult

    @property
    def grid_import_mwh(self) -> float:
        """Annual energy still drawn from the grid."""
        return self.result.grid_import.total()

    def reserve_always_held(self) -> bool:
        """Whether the stored energy never dipped below the reserve."""
        return bool(self.result.charge_level.min() >= self.reserve_mwh - 1e-9)


def simulate_dual_use(
    demand: HourlySeries,
    supply: HourlySeries,
    capacity_mwh: float,
    ride_through_hours: float,
    chemistry: CellChemistry = LFP,
) -> DualUseOutcome:
    """Operate a dual-use pack for carbon while guarding a resilience
    reserve sized for ``ride_through_hours`` of peak load."""
    reserve = reserve_for_ride_through(demand, ride_through_hours)
    spec = dual_use_spec(capacity_mwh, reserve, chemistry=chemistry)
    result = simulate_battery(demand, supply, spec)
    return DualUseOutcome(spec=spec, reserve_mwh=reserve, result=result)
