"""Hourly battery operation against a renewable surplus/deficit profile.

§4.2: "Batteries will be charged when there is excess renewable supply ...
Batteries will be discharged to power the datacenter when there is a lack of
renewable supply."  This module runs that greedy policy hour by hour over a
year, honouring the C/L/C constraints, and reports the resulting grid
imports, residual surplus, and the charge-level trace behind Figure 16.

The inner loop runs on plain floats (not :class:`HourlySeries` ops) because
design-space sweeps call it thousands of times per region.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import inc, span
from ..timeseries import Histogram, HourlySeries, histogram
from .clc import Battery, BatterySpec


@dataclass(frozen=True)
class BatterySimResult:
    """Outcome of one year of greedy battery operation.

    Attributes
    ----------
    spec:
        The battery that was simulated.
    grid_import:
        Hourly power (MW) still drawn from the grid after discharging.
    surplus:
        Hourly renewable surplus (MW) remaining after charging (energy the
        datacenter's investment produced but could not use or store).
    charge_level:
        Hourly energy content (MWh) at the *end* of each hour.
    charged_mwh:
        Total energy absorbed over the year (at the meter, pre-loss).
    discharged_mwh:
        Total energy delivered over the year.
    """

    spec: BatterySpec
    grid_import: HourlySeries
    surplus: HourlySeries
    charge_level: HourlySeries
    charged_mwh: float
    discharged_mwh: float

    def equivalent_full_cycles(self) -> float:
        """Equivalent full cycles accumulated over the year."""
        usable = self.spec.usable_mwh
        if usable == 0.0:
            return 0.0
        return self.discharged_mwh / usable

    def cycles_per_day(self) -> float:
        """Average equivalent cycles per day — the lifetime duty cycle."""
        return self.equivalent_full_cycles() / self.charge_level.calendar.n_days

    def state_of_charge(self) -> HourlySeries:
        """Charge level normalized to nameplate capacity (0..1)."""
        if self.spec.capacity_mwh == 0.0:
            return HourlySeries.zeros(self.charge_level.calendar, name="soc")
        return (self.charge_level / self.spec.capacity_mwh).with_name("soc")

    def charge_level_histogram(self, n_bins: int = 10) -> Histogram:
        """Distribution of hourly state of charge — Figure 16.

        The paper observes that under the carbon-optimal configuration
        "batteries are often fully charged or fully discharged", i.e. the
        histogram is U-shaped with mass at both ends.
        """
        if self.spec.capacity_mwh == 0.0:
            raise ValueError("charge-level histogram undefined for a zero-capacity battery")
        return histogram(self.state_of_charge().values, n_bins=n_bins)


def simulate_battery(
    demand: HourlySeries,
    supply: HourlySeries,
    spec: BatterySpec,
    initial_soc: float = 1.0,
) -> BatterySimResult:
    """Run the greedy charge-on-surplus / discharge-on-deficit policy.

    For every hour: if renewable ``supply`` exceeds datacenter ``demand``,
    the surplus is offered to the battery (C-rate and headroom limits apply,
    leftovers are reported as ``surplus``); if supply falls short, the
    battery serves as much of the deficit as the C-rate, DoD floor, and
    efficiency allow, and the remainder is imported from the grid.

    Parameters
    ----------
    demand, supply:
        Aligned hourly power traces in MW.
    spec:
        Battery to operate.  A zero-capacity spec degenerates to the
        renewables-only case (grid import = positive part of the deficit).
    initial_soc:
        Starting state of charge within the DoD-usable band.
    """
    if demand.calendar != supply.calendar:
        raise ValueError("demand and supply must share a calendar")
    if demand.min() < 0 or supply.min() < 0:
        raise ValueError("demand and supply must be non-negative")

    calendar = demand.calendar
    battery = Battery(spec, initial_soc=initial_soc)

    demand_values = demand.values
    supply_values = supply.values
    n_hours = calendar.n_hours
    grid_import = np.zeros(n_hours)
    surplus = np.zeros(n_hours)
    charge_level = np.zeros(n_hours)

    with span("simulate_battery", capacity_mwh=spec.capacity_mwh, hours=n_hours):
        for hour in range(n_hours):
            gap = supply_values[hour] - demand_values[hour]
            if gap >= 0.0:
                absorbed = battery.charge(gap)
                surplus[hour] = gap - absorbed
            else:
                delivered = battery.discharge(-gap)
                grid_import[hour] = -gap - delivered
            charge_level[hour] = battery.energy_mwh

    inc("battery_sims")
    inc("battery_sim_hours", n_hours)
    return BatterySimResult(
        spec=spec,
        grid_import=HourlySeries(grid_import, calendar, name="grid import"),
        surplus=HourlySeries(surplus, calendar, name="surplus"),
        charge_level=HourlySeries(charge_level, calendar, name="charge level"),
        charged_mwh=battery.charged_mwh,
        discharged_mwh=battery.discharged_mwh,
    )


def capacity_for_full_coverage(
    demand: HourlySeries,
    supply: HourlySeries,
    max_hours_of_load: float = 48.0,
    tolerance_mwh: float = 1.0,
) -> float:
    """Smallest battery capacity (MWh) achieving zero grid import, if any.

    Binary-searches capacity between 0 and ``max_hours_of_load`` times the
    average demand (the paper reports capacities in "computational hours").
    Returns ``float('inf')`` when even the largest battery cannot reach 24/7
    coverage — e.g. when the year's total renewable supply is simply less
    than total demand, which no storage can fix.

    Used by the Figure 9 reproduction ("How much battery needs to be
    deployed for 24/7 renewable energy?").
    """
    if max_hours_of_load <= 0:
        raise ValueError(f"max_hours_of_load must be positive, got {max_hours_of_load}")
    if tolerance_mwh <= 0:
        raise ValueError(f"tolerance_mwh must be positive, got {tolerance_mwh}")

    def deficit_with(capacity_mwh: float) -> float:
        result = simulate_battery(demand, supply, BatterySpec(capacity_mwh))
        return result.grid_import.total()

    if deficit_with(0.0) == 0.0:
        return 0.0
    high = max_hours_of_load * demand.mean()
    if deficit_with(high) > 0.0:
        return float("inf")
    low = 0.0
    while high - low > tolerance_mwh:
        mid = (low + high) / 2.0
        if deficit_with(mid) > 0.0:
            low = mid
        else:
            high = mid
    return high
