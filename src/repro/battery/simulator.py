"""Hourly battery operation against a renewable surplus/deficit profile.

§4.2: "Batteries will be charged when there is excess renewable supply ...
Batteries will be discharged to power the datacenter when there is a lack of
renewable supply."  This module runs that greedy policy hour by hour over a
year, honouring the C/L/C constraints, and reports the resulting grid
imports, residual surplus, and the charge-level trace behind Figure 16.

Design-space sweeps call this simulation thousands of times per region, so
the year loop itself lives in :mod:`repro.kernels.battery`: an object-free
kernel over raw numpy arrays with the spec constants hoisted out of the
loop (and a fully vectorized zero-capacity path).  This module validates
inputs, opens the tracing span, and wraps the kernel's arrays back into
:class:`HourlySeries` results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..kernels.battery import (
    BatterySeed,
    battery_import_exceeds,
    battery_run,
    battery_run_seeded,
)
from ..obs import inc, span
from ..timeseries import Histogram, HourlySeries, histogram
from .clc import BatterySpec
from ..timeseries.stats import is_exact_zero


@dataclass(frozen=True)
class BatterySimResult:
    """Outcome of one year of greedy battery operation.

    Attributes
    ----------
    spec:
        The battery that was simulated.
    grid_import:
        Hourly power (MW) still drawn from the grid after discharging.
    surplus:
        Hourly renewable surplus (MW) remaining after charging (energy the
        datacenter's investment produced but could not use or store).
    charge_level:
        Hourly energy content (MWh) at the *end* of each hour.
    charged_mwh:
        Total energy absorbed over the year (at the meter, pre-loss).
    discharged_mwh:
        Total energy delivered over the year.
    """

    spec: BatterySpec
    grid_import: HourlySeries
    surplus: HourlySeries
    charge_level: HourlySeries
    charged_mwh: float
    discharged_mwh: float

    def equivalent_full_cycles(self) -> float:
        """Equivalent full cycles accumulated over the year."""
        usable = self.spec.usable_mwh
        if is_exact_zero(usable):
            return 0.0
        return self.discharged_mwh / usable

    def cycles_per_day(self) -> float:
        """Average equivalent cycles per day — the lifetime duty cycle."""
        return self.equivalent_full_cycles() / self.charge_level.calendar.n_days

    def state_of_charge(self) -> HourlySeries:
        """Charge level normalized to nameplate capacity (0..1)."""
        if is_exact_zero(self.spec.capacity_mwh):
            return HourlySeries.zeros(self.charge_level.calendar, name="soc")
        return (self.charge_level / self.spec.capacity_mwh).with_name("soc")

    def charge_level_histogram(self, n_bins: int = 10) -> Histogram:
        """Distribution of hourly state of charge — Figure 16.

        The paper observes that under the carbon-optimal configuration
        "batteries are often fully charged or fully discharged", i.e. the
        histogram is U-shaped with mass at both ends.
        """
        if is_exact_zero(self.spec.capacity_mwh):
            raise ValueError("charge-level histogram undefined for a zero-capacity battery")
        return histogram(self.state_of_charge().values, n_bins=n_bins)


def simulate_battery(
    demand: HourlySeries,
    supply: HourlySeries,
    spec: BatterySpec,
    initial_soc: float = 1.0,
    seed: Optional[BatterySeed] = None,
) -> BatterySimResult:
    """Run the greedy charge-on-surplus / discharge-on-deficit policy.

    For every hour: if renewable ``supply`` exceeds datacenter ``demand``,
    the surplus is offered to the battery (C-rate and headroom limits apply,
    leftovers are reported as ``surplus``); if supply falls short, the
    battery serves as much of the deficit as the C-rate, DoD floor, and
    efficiency allow, and the remainder is imported from the grid.

    Parameters
    ----------
    demand, supply:
        Aligned hourly power traces in MW.
    spec:
        Battery to operate.  A zero-capacity spec degenerates to the
        renewables-only case (grid import = positive part of the deficit).
    initial_soc:
        Starting state of charge within the DoD-usable band.
    seed:
        Optional :class:`~repro.kernels.battery.BatterySeed` built from
        *these exact* demand/supply traces (validated).  Sweeps walking
        the battery-capacity axis share one seed per investment, which
        fast-forwards the saturated stretches of the year loop; results
        are bitwise-identical with and without a seed.
    """
    if demand.calendar != supply.calendar:
        raise ValueError("demand and supply must share a calendar")
    if demand.min() < 0 or supply.min() < 0:
        raise ValueError("demand and supply must be non-negative")
    if not 0.0 <= initial_soc <= 1.0:
        raise ValueError(f"initial_soc must be in [0, 1], got {initial_soc}")
    if seed is not None and not seed.matches(demand.values, supply.values):
        raise ValueError("seed was built from different demand/supply traces")

    calendar = demand.calendar
    n_hours = calendar.n_hours
    floor = spec.floor_mwh
    kernel_kwargs = dict(
        capacity_mwh=spec.capacity_mwh,
        floor_mwh=floor,
        max_charge_mw=spec.max_charge_mw,
        max_discharge_mw=spec.max_discharge_mw,
        charge_efficiency=spec.chemistry.charge_efficiency,
        discharge_efficiency=spec.chemistry.discharge_efficiency,
        initial_energy_mwh=floor + initial_soc * (spec.capacity_mwh - floor),
    )

    with span("simulate_battery", capacity_mwh=spec.capacity_mwh, hours=n_hours):
        if seed is not None:
            inc("battery_runs_seeded")
            run = battery_run_seeded(seed, **kernel_kwargs)
        else:
            run = battery_run(demand.values, supply.values, **kernel_kwargs)

    inc("battery_sims")
    inc("battery_sim_hours", n_hours)
    return BatterySimResult(
        spec=spec,
        grid_import=HourlySeries(run.grid_import, calendar, name="grid import"),
        surplus=HourlySeries(run.surplus, calendar, name="surplus"),
        charge_level=HourlySeries(run.charge_level, calendar, name="charge level"),
        charged_mwh=run.charged_mwh,
        discharged_mwh=run.discharged_mwh,
    )


def capacity_for_full_coverage(
    demand: HourlySeries,
    supply: HourlySeries,
    max_hours_of_load: float = 48.0,
    tolerance_mwh: float = 1.0,
) -> float:
    """Smallest battery capacity (MWh) achieving zero grid import, if any.

    Binary-searches capacity between 0 and ``max_hours_of_load`` times the
    average demand (the paper reports capacities in "computational hours").
    Returns ``float('inf')`` when even the largest battery cannot reach 24/7
    coverage — e.g. when the year's total renewable supply is simply less
    than total demand, which no storage can fix.

    Used by the Figure 9 reproduction ("How much battery needs to be
    deployed for 24/7 renewable energy?").

    The search only ever asks "does this capacity still leave a deficit?",
    so it runs on :func:`repro.kernels.battery.battery_import_exceeds`
    rather than full simulations: the zero-capacity probe is the vectorized
    renewables-only arithmetic, and every undersized midpoint exits its
    year loop at the first hour the cumulative deficit turns positive
    (only the exactly-zero-deficit midpoints pay for a full year).
    """
    if max_hours_of_load <= 0:
        raise ValueError(f"max_hours_of_load must be positive, got {max_hours_of_load}")
    if tolerance_mwh <= 0:
        raise ValueError(f"tolerance_mwh must be positive, got {tolerance_mwh}")
    if demand.calendar != supply.calendar:
        raise ValueError("demand and supply must share a calendar")
    if demand.min() < 0 or supply.min() < 0:
        raise ValueError("demand and supply must be non-negative")

    demand_values = demand.values
    supply_values = supply.values

    def has_deficit(capacity_mwh: float) -> bool:
        spec = BatterySpec(capacity_mwh)
        inc("battery_capacity_probes")
        return battery_import_exceeds(
            demand_values,
            supply_values,
            threshold_mwh=0.0,
            capacity_mwh=spec.capacity_mwh,
            floor_mwh=spec.floor_mwh,
            max_charge_mw=spec.max_charge_mw,
            max_discharge_mw=spec.max_discharge_mw,
            charge_efficiency=spec.chemistry.charge_efficiency,
            discharge_efficiency=spec.chemistry.discharge_efficiency,
            initial_energy_mwh=spec.capacity_mwh,
        )

    with span("capacity_for_full_coverage", max_hours_of_load=max_hours_of_load):
        if not has_deficit(0.0):
            return 0.0
        high = max_hours_of_load * demand.mean()
        if has_deficit(high):
            return float("inf")
        low = 0.0
        while high - low > tolerance_mwh:
            mid = (low + high) / 2.0
            if has_deficit(mid):
                low = mid
            else:
                high = mid
    return high
