"""The C/L/C lithium-ion storage model (Kazhamiaka et al., used in §4.2).

The paper adopts the C/L/C model, which captures the characteristics that
matter for system-level sizing while staying tractable:

* **C**apacity — energy content limits, including a depth-of-discharge (DoD)
  floor that reserves part of the capacity to extend lifespan;
* **L**oss — separate charge and discharge efficiencies;
* **C**-rate — applied power limited linearly in capacity (1C = full charge
  or discharge in one hour, the paper's setting for hourly data).

:class:`Battery` is a small mutable state machine: ``charge`` and
``discharge`` each take an offered/requested power and a duration and return
what was actually absorbed/delivered after all three constraint families are
applied.  The hourly fleet simulation lives in
:mod:`repro.battery.simulator`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .chemistry import LFP, CellChemistry
from ..timeseries.stats import is_exact_zero


@dataclass(frozen=True)
class BatterySpec:
    """A sized battery installation.

    Attributes
    ----------
    capacity_mwh:
        Nameplate energy capacity.  Zero is allowed and means "no battery"
        (every operation is a no-op), which lets sweeps include the
        batteryless design point uniformly.
    chemistry:
        Cell chemistry providing efficiencies, C-rates, and cycle life.
    depth_of_discharge:
        Usable fraction of capacity (1.0 = the full pack; 0.8 reserves a 20%
        floor, trading usable capacity for cycle life — the §5.2 study).
    """

    capacity_mwh: float
    chemistry: CellChemistry = LFP
    depth_of_discharge: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity_mwh < 0:
            raise ValueError(f"capacity must be non-negative, got {self.capacity_mwh}")
        if not 0.0 < self.depth_of_discharge <= 1.0:
            raise ValueError(
                f"depth_of_discharge must be in (0, 1], got {self.depth_of_discharge}"
            )

    @property
    def floor_mwh(self) -> float:
        """Minimum allowed energy content: ``(1 - DoD) * capacity``."""
        return (1.0 - self.depth_of_discharge) * self.capacity_mwh

    @property
    def usable_mwh(self) -> float:
        """Energy between the DoD floor and full: ``DoD * capacity``."""
        return self.depth_of_discharge * self.capacity_mwh

    @property
    def max_charge_mw(self) -> float:
        """C-rate limit on charging power."""
        return self.chemistry.max_charge_c_rate * self.capacity_mwh

    @property
    def max_discharge_mw(self) -> float:
        """C-rate limit on discharging power."""
        return self.chemistry.max_discharge_c_rate * self.capacity_mwh

    def lifetime_years(self, cycles_per_day: float = 1.0) -> float:
        """Expected lifetime at this spec's DoD and a given duty cycle."""
        return self.chemistry.lifetime_years(self.depth_of_discharge, cycles_per_day)


class Battery:
    """Mutable charge state over a :class:`BatterySpec` (the C/L/C dynamics).

    The battery starts full (the paper's simulations begin with stored
    carbon-free energy available; tests cover the empty-start variant via
    ``initial_soc``).
    """

    def __init__(self, spec: BatterySpec, initial_soc: float = 1.0) -> None:
        if not 0.0 <= initial_soc <= 1.0:
            raise ValueError(f"initial_soc must be in [0, 1], got {initial_soc}")
        self.spec = spec
        floor = spec.floor_mwh
        self._energy_mwh = floor + initial_soc * (spec.capacity_mwh - floor)
        self._charged_mwh = 0.0
        self._discharged_mwh = 0.0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def energy_mwh(self) -> float:
        """Current energy content."""
        return self._energy_mwh

    @property
    def state_of_charge(self) -> float:
        """Energy content as a fraction of nameplate capacity (0..1)."""
        if is_exact_zero(self.spec.capacity_mwh):
            return 0.0
        return self._energy_mwh / self.spec.capacity_mwh

    @property
    def headroom_mwh(self) -> float:
        """Energy acceptable before hitting the full limit."""
        return self.spec.capacity_mwh - self._energy_mwh

    @property
    def available_mwh(self) -> float:
        """Stored energy above the DoD floor (pre-efficiency)."""
        return self._energy_mwh - self.spec.floor_mwh

    @property
    def charged_mwh(self) -> float:
        """Total energy absorbed so far, measured at the meter (pre-loss)."""
        return self._charged_mwh

    @property
    def discharged_mwh(self) -> float:
        """Total energy delivered so far (the cycle-counting basis)."""
        return self._discharged_mwh

    def equivalent_full_cycles(self) -> float:
        """Discharged energy divided by usable capacity.

        This is the standard equivalent-full-cycle count against which the
        chemistry's cycle life is budgeted; zero-capacity batteries report
        zero cycles.
        """
        usable = self.spec.usable_mwh
        if is_exact_zero(usable):
            return 0.0
        return self._discharged_mwh / usable

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def charge(self, offered_mw: float, duration_h: float = 1.0) -> float:
        """Charge from ``offered_mw`` for ``duration_h``; return MW absorbed.

        The absorbed power is the offer clipped by the C-rate limit and by
        remaining headroom (after charge-efficiency losses, only
        ``charge_efficiency`` of absorbed energy is stored).
        """
        if offered_mw < 0:
            raise ValueError(f"offered power must be non-negative, got {offered_mw}")
        if duration_h <= 0:
            raise ValueError(f"duration must be positive, got {duration_h}")
        if is_exact_zero(self.spec.capacity_mwh) or is_exact_zero(offered_mw):
            return 0.0

        eta = self.spec.chemistry.charge_efficiency
        power = min(offered_mw, self.spec.max_charge_mw)
        # Don't absorb more than the headroom can store after losses; the
        # max() guards against headroom being a hair negative from rounding.
        power = max(min(power, self.headroom_mwh / (eta * duration_h)), 0.0)
        stored = power * duration_h * eta
        self._energy_mwh += stored
        self._charged_mwh += power * duration_h
        return power

    def discharge(self, requested_mw: float, duration_h: float = 1.0) -> float:
        """Discharge to serve ``requested_mw``; return MW actually delivered.

        Delivered power is the request clipped by the C-rate limit and by
        the energy available above the DoD floor (drawing stored energy at
        ``1 / discharge_efficiency`` per unit delivered).
        """
        if requested_mw < 0:
            raise ValueError(f"requested power must be non-negative, got {requested_mw}")
        if duration_h <= 0:
            raise ValueError(f"duration must be positive, got {duration_h}")
        if is_exact_zero(self.spec.capacity_mwh) or is_exact_zero(requested_mw):
            return 0.0

        eta = self.spec.chemistry.discharge_efficiency
        power = min(requested_mw, self.spec.max_discharge_mw)
        # Delivering `power` for `duration_h` drains power*duration/eta; the
        # max() guards against availability being a hair negative from
        # rounding at the DoD floor.
        power = max(min(power, self.available_mwh * eta / duration_h), 0.0)
        drained = power * duration_h / eta
        self._energy_mwh -= drained
        self._discharged_mwh += power * duration_h
        return power

    def reset(self, initial_soc: float = 1.0) -> None:
        """Restore the initial state and zero the throughput counters."""
        if not 0.0 <= initial_soc <= 1.0:
            raise ValueError(f"initial_soc must be in [0, 1], got {initial_soc}")
        floor = self.spec.floor_mwh
        self._energy_mwh = floor + initial_soc * (self.spec.capacity_mwh - floor)
        self._charged_mwh = 0.0
        self._discharged_mwh = 0.0
