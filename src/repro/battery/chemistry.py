"""Battery chemistry parameters and cycle-life models (paper §4.2, §5.1).

The paper tunes its C/L/C model to Lithium Iron Phosphate (LFP) cells — the
A123 APR18650M1A — and quotes cycle-life figures as a function of depth of
discharge: 3,000 cycles at 100% DoD, 4,500 at 80%, and 10,000 at 60% (§5.2,
with the caveat that at 60% "other degradation factors would come into play
before reaching the 27-year lifespan").  Lifetime in years converts cycles at
one cycle per day, matching the paper's 1C hourly-data assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: (depth-of-discharge, cycle life) anchor points from §5.1/§5.2.
LFP_CYCLE_LIFE_POINTS: Tuple[Tuple[float, float], ...] = (
    (0.60, 10000.0),
    (0.80, 4500.0),
    (1.00, 3000.0),
)

#: Days per year used when converting cycle life to calendar lifetime.
_DAYS_PER_YEAR = 365.0

#: Calendar aging cap: beyond this, "other degradation factors come into
#: play" (§5.2) regardless of remaining cycle life.
CALENDAR_LIFE_CAP_YEARS = 27.0


@dataclass(frozen=True)
class CellChemistry:
    """Electrical and lifecycle parameters of a battery cell type.

    Attributes
    ----------
    name:
        Chemistry label.
    charge_efficiency:
        Fraction of input energy stored while charging.
    discharge_efficiency:
        Fraction of stored energy delivered while discharging.
    max_charge_c_rate:
        Maximum charging power as a multiple of capacity (1.0 = full charge
        in one hour — the paper's assumption, since its data is hourly).
    max_discharge_c_rate:
        Maximum discharging power as a multiple of capacity.
    cycle_life_points:
        (DoD, cycles) anchors for the cycle-life interpolation.
    embodied_kg_per_kwh:
        Chemistry-specific manufacturing footprint per kWh of capacity;
        ``None`` means "use the embodied model's default (the paper's LIB
        figure)".  Lets alternative chemistries such as sodium-ion carry
        their lower manufacturing impact through the optimizer.
    """

    name: str
    charge_efficiency: float
    discharge_efficiency: float
    max_charge_c_rate: float
    max_discharge_c_rate: float
    cycle_life_points: Tuple[Tuple[float, float], ...]
    embodied_kg_per_kwh: Optional[float] = None

    def __post_init__(self) -> None:
        for label, eff in (
            ("charge_efficiency", self.charge_efficiency),
            ("discharge_efficiency", self.discharge_efficiency),
        ):
            if not 0.0 < eff <= 1.0:
                raise ValueError(f"{label} must be in (0, 1], got {eff}")
        for label, rate in (
            ("max_charge_c_rate", self.max_charge_c_rate),
            ("max_discharge_c_rate", self.max_discharge_c_rate),
        ):
            if rate <= 0:
                raise ValueError(f"{label} must be positive, got {rate}")
        if len(self.cycle_life_points) < 2:
            raise ValueError("need at least two cycle-life anchor points")
        dods = [d for d, _ in self.cycle_life_points]
        if sorted(dods) != dods or len(set(dods)) != len(dods):
            raise ValueError("cycle-life anchors must have strictly increasing DoD")
        for dod, cycles in self.cycle_life_points:
            if not 0.0 < dod <= 1.0:
                raise ValueError(f"anchor DoD must be in (0, 1], got {dod}")
            if cycles <= 0:
                raise ValueError(f"anchor cycles must be positive, got {cycles}")

    @property
    def round_trip_efficiency(self) -> float:
        """Charge efficiency times discharge efficiency."""
        return self.charge_efficiency * self.discharge_efficiency

    def cycle_life(self, depth_of_discharge: float) -> float:
        """Expected full (dis)charge cycles at a given DoD.

        Log-linear interpolation between the anchor points; extrapolation
        below the lowest anchor continues the last segment's slope, and DoD
        above the highest anchor is rejected.
        """
        import math

        if not 0.0 < depth_of_discharge <= 1.0:
            raise ValueError(
                f"depth_of_discharge must be in (0, 1], got {depth_of_discharge}"
            )
        points = self.cycle_life_points
        if depth_of_discharge > points[-1][0]:
            raise ValueError(
                f"DoD {depth_of_discharge} exceeds deepest anchor {points[-1][0]}"
            )
        # Find the surrounding segment (or the first segment for shallow DoD).
        for (d0, c0), (d1, c1) in zip(points, points[1:]):
            if depth_of_discharge <= d1:
                fraction = (depth_of_discharge - d0) / (d1 - d0)
                return math.exp(
                    math.log(c0) + fraction * (math.log(c1) - math.log(c0))
                )
        raise AssertionError("unreachable: anchors cover (0, max_dod]")

    def lifetime_years(
        self, depth_of_discharge: float, cycles_per_day: float = 1.0
    ) -> float:
        """Calendar lifetime in years at a duty cycle, capped at 27 years.

        §5.2 works at one cycle per day (hourly data, 1C): 3,000 cycles at
        100% DoD → ~8.2 years; 4,500 at 80% → ~12.3 years; the 60% DoD
        figure is capped by calendar aging.
        """
        if cycles_per_day <= 0:
            raise ValueError(f"cycles_per_day must be positive, got {cycles_per_day}")
        years = self.cycle_life(depth_of_discharge) / (cycles_per_day * _DAYS_PER_YEAR)
        return min(years, CALENDAR_LIFE_CAP_YEARS)


#: The paper's battery: utility-scale LFP at a 1C rate with high round-trip
#: efficiency (LFP round-trip is typically 92-96%).
LFP = CellChemistry(
    name="LiFePO4 (A123 APR18650M1A proxy)",
    charge_efficiency=0.97,
    discharge_efficiency=0.97,
    max_charge_c_rate=1.0,
    max_discharge_c_rate=1.0,
    cycle_life_points=LFP_CYCLE_LIFE_POINTS,
)

#: The emerging alternative §4.2 points to: "sodium-ion (Na+) batteries, for
#: which materials are easier to obtain and come with lower environmental
#: impact".  Parameters reflect current Na-ion cells: lower round-trip
#: efficiency and cycle life than LFP, but a markedly smaller manufacturing
#: footprint (no lithium/cobalt extraction).
SODIUM_ION = CellChemistry(
    name="Sodium-ion (Na+)",
    charge_efficiency=0.95,
    discharge_efficiency=0.95,
    max_charge_c_rate=1.0,
    max_discharge_c_rate=1.0,
    cycle_life_points=((0.60, 6000.0), (0.80, 3500.0), (1.00, 2500.0)),
    embodied_kg_per_kwh=65.0,
)
