"""Peak-shaving battery operation (paper §2 / related work §6).

Today's datacenters "deploy batteries to ensure system resilience and shave
power peaks" — the battery caps the facility's *grid draw* rather than
chasing carbon.  This module implements that conventional policy so it can
be compared against the paper's carbon-driven policy
(:mod:`repro.battery.simulator`): same pack, different objective, different
carbon outcome (``bench_peak_shaving.py``).

Policy: whenever net grid demand (load minus renewables) would exceed a
threshold, the battery discharges to hold the draw at the threshold; below
the threshold it recharges from the grid — as gently as possible while
staying ready for the next peak.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries import HourlySeries
from .clc import Battery, BatterySpec
from ..timeseries.stats import is_exact_zero


@dataclass(frozen=True)
class PeakShavingResult:
    """Outcome of one year of peak-shaving operation.

    Attributes
    ----------
    spec:
        The battery operated.
    threshold_mw:
        Grid-draw cap the policy defended.
    grid_import:
        Hourly grid draw after shaving, MW.
    unshaved_mwh:
        Energy above the threshold the battery failed to absorb (the pack
        ran dry during a long peak).
    charge_level:
        Hourly energy content, MWh.
    discharged_mwh / charged_mwh:
        Meter totals.
    """

    spec: BatterySpec
    threshold_mw: float
    grid_import: HourlySeries
    unshaved_mwh: float
    charge_level: HourlySeries
    discharged_mwh: float
    charged_mwh: float

    def peak_grid_draw_mw(self) -> float:
        """Realized maximum grid draw over the year."""
        return self.grid_import.max()

    def shaved_successfully(self) -> bool:
        """Whether the cap held in every hour."""
        return is_exact_zero(self.unshaved_mwh)


def simulate_peak_shaving(
    demand: HourlySeries,
    supply: HourlySeries,
    spec: BatterySpec,
    threshold_mw: float,
    recharge_rate_fraction: float = 0.25,
) -> PeakShavingResult:
    """Operate a battery to cap grid draw at ``threshold_mw``.

    Per hour: net demand is load minus renewable supply (renewables always
    serve first).  Above the threshold the battery discharges the excess
    (up to its limits; the remainder is *unshaved* and drawn anyway).
    Below the threshold the battery recharges from the grid, limited to
    ``recharge_rate_fraction`` of its C-rate and never pushing the draw
    over the threshold.

    Parameters
    ----------
    demand, supply:
        Aligned hourly power traces, MW.
    spec:
        The pack to operate.
    threshold_mw:
        Grid-draw cap to defend (must be positive).
    recharge_rate_fraction:
        Gentleness of grid recharge, in (0, 1].
    """
    if demand.calendar != supply.calendar:
        raise ValueError("demand and supply must share a calendar")
    if threshold_mw <= 0:
        raise ValueError(f"threshold must be positive, got {threshold_mw}")
    if not 0.0 < recharge_rate_fraction <= 1.0:
        raise ValueError(
            f"recharge_rate_fraction must be in (0, 1], got {recharge_rate_fraction}"
        )

    calendar = demand.calendar
    battery = Battery(spec, initial_soc=1.0)
    n_hours = calendar.n_hours
    demand_values = demand.values
    supply_values = supply.values

    grid_import = np.zeros(n_hours)
    charge_level = np.zeros(n_hours)
    unshaved = 0.0
    recharge_cap = spec.max_charge_mw * recharge_rate_fraction

    for hour in range(n_hours):
        net = max(demand_values[hour] - supply_values[hour], 0.0)
        if net > threshold_mw:
            excess = net - threshold_mw
            delivered = battery.discharge(excess)
            remainder = excess - delivered
            grid_import[hour] = threshold_mw + remainder
            unshaved += remainder
        else:
            headroom = threshold_mw - net
            absorbed = battery.charge(min(headroom, recharge_cap))
            grid_import[hour] = net + absorbed
        charge_level[hour] = battery.energy_mwh

    return PeakShavingResult(
        spec=spec,
        threshold_mw=threshold_mw,
        grid_import=HourlySeries(grid_import, calendar, name="grid import"),
        unshaved_mwh=unshaved,
        charge_level=HourlySeries(charge_level, calendar, name="charge level"),
        discharged_mwh=battery.discharged_mwh,
        charged_mwh=battery.charged_mwh,
    )


def minimum_shavable_threshold(
    demand: HourlySeries,
    supply: HourlySeries,
    spec: BatterySpec,
    tolerance_mw: float = 0.01,
) -> float:
    """Lowest grid-draw cap this pack can defend all year.

    Bisects the threshold between zero and the unshaved peak; the result is
    the provisioning number a peak-shaving deployment buys the battery for.
    """
    if tolerance_mw <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance_mw}")
    net_peak = float(np.clip(demand.values - supply.values, 0.0, None).max())
    if is_exact_zero(net_peak):
        raise ValueError("net demand never exceeds zero; nothing to shave")

    def holds(threshold: float) -> bool:
        return simulate_peak_shaving(demand, supply, spec, threshold).shaved_successfully()

    low, high = 0.0, net_peak
    if not holds(high):
        raise AssertionError("threshold at the unshaved peak must always hold")
    while high - low > tolerance_mw:
        mid = (low + high) / 2.0
        if mid <= 0.0:
            break
        if holds(mid):
            high = mid
        else:
            low = mid
    return high
