"""Forecast accuracy metrics."""

from __future__ import annotations

import numpy as np
from ..timeseries.stats import is_exact_zero


def _pair(actual, forecast) -> tuple:
    a = np.asarray(actual, dtype=float)
    f = np.asarray(forecast, dtype=float)
    if a.shape != f.shape:
        raise ValueError(f"shape mismatch: actual {a.shape} vs forecast {f.shape}")
    if a.size == 0:
        raise ValueError("cannot score empty forecasts")
    return a, f


def mean_absolute_error(actual, forecast) -> float:
    """Mean of |actual - forecast|."""
    a, f = _pair(actual, forecast)
    return float(np.abs(a - f).mean())


def root_mean_squared_error(actual, forecast) -> float:
    """Root of mean squared error."""
    a, f = _pair(actual, forecast)
    return float(np.sqrt(((a - f) ** 2).mean()))


def normalized_mae(actual, forecast) -> float:
    """MAE divided by the mean actual — comparable across trace scales.

    Raises when the actual signal has zero mean (nothing to normalize by).
    """
    a, f = _pair(actual, forecast)
    mean = a.mean()
    if is_exact_zero(mean):
        raise ValueError("normalized MAE undefined for a zero-mean actual")
    return float(np.abs(a - f).mean() / mean)


def forecast_skill(actual, forecast, reference) -> float:
    """Skill score vs a reference forecast: ``1 - MAE/MAE_ref``.

    Positive = better than the reference; 1.0 = perfect; negative = worse.
    """
    mae = mean_absolute_error(actual, forecast)
    mae_ref = mean_absolute_error(actual, reference)
    if is_exact_zero(mae_ref):
        raise ValueError("reference forecast is perfect; skill undefined")
    return 1.0 - mae / mae_ref
