"""Forecast-driven (online) carbon-aware scheduling.

The paper's greedy scheduler is an oracle: it plans each day against the
day's *actual* renewable supply and carbon intensity.  A deployed scheduler
only has forecasts.  This module re-runs the same per-day greedy plan
against day-ahead forecasts and then *executes* the plan against reality,
quantifying how much of the oracle's benefit survives imperfect prediction
(the ``bench_forecast.py`` ablation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.greedy import schedule_run
from ..obs import inc, span
from ..timeseries import HOURS_PER_DAY, HourlySeries
from .models import forecast_series


@dataclass(frozen=True)
class OnlineScheduleResult:
    """Outcome of forecast-driven scheduling over a year.

    Attributes
    ----------
    shifted_demand:
        Demand after executing the forecast-planned shifts, MW.
    realized_deficit_mwh:
        Unmet-by-renewables energy against *actual* supply.
    oracle_deficit_mwh:
        What the paper's oracle scheduler achieves on the same inputs.
    baseline_deficit_mwh:
        Deficit with no scheduling at all.
    moved_mwh:
        Energy the forecast-driven plan moved.
    """

    shifted_demand: HourlySeries
    realized_deficit_mwh: float
    oracle_deficit_mwh: float
    baseline_deficit_mwh: float
    moved_mwh: float

    def regret(self) -> float:
        """Benefit lost to forecast error, as a fraction of the oracle's gain.

        0.0 = the forecast scheduler matched the oracle; 1.0 = it achieved
        nothing over the unscheduled baseline; >1 = it actively hurt.
        """
        oracle_gain = self.baseline_deficit_mwh - self.oracle_deficit_mwh
        if oracle_gain <= 0.0:
            raise ValueError("oracle gains nothing here; regret undefined")
        realized_gain = self.baseline_deficit_mwh - self.realized_deficit_mwh
        return 1.0 - realized_gain / oracle_gain


def schedule_with_forecast(
    demand: HourlySeries,
    actual_supply: HourlySeries,
    actual_intensity: HourlySeries,
    forecaster,
    capacity_mw: float,
    flexible_ratio: float,
) -> OnlineScheduleResult:
    """Plan each day with day-ahead forecasts, execute against reality.

    The *plan* (which hours shed load, which hours absorb it) is computed by
    the same greedy routine the paper uses, but fed forecast supply and
    forecast intensity; the resulting shifted demand is then scored against
    actual supply.

    Parameters mirror :func:`repro.scheduling.schedule_carbon_aware` plus
    the ``forecaster`` (see :mod:`repro.forecast.models`).
    """
    if demand.calendar != actual_supply.calendar or demand.calendar != actual_intensity.calendar:
        raise ValueError("demand, supply, and intensity must share a calendar")
    if not 0.0 <= flexible_ratio <= 1.0:
        raise ValueError(f"flexible_ratio must be in [0, 1], got {flexible_ratio}")
    if capacity_mw < demand.max():
        raise ValueError(
            f"capacity {capacity_mw} MW below demand peak {demand.max():.3f} MW"
        )

    calendar = demand.calendar
    with span("schedule_with_forecast", fwr=flexible_ratio, days=calendar.n_days):
        supply_forecast = forecast_series(forecaster, actual_supply.values)
        intensity_forecast = forecast_series(forecaster, actual_intensity.values)

        shifted, moved = schedule_run(
            demand.values,
            supply_forecast,
            intensity_forecast,
            capacity_mw,
            np.full(HOURS_PER_DAY, float(flexible_ratio)),
        )
    inc("forecast_schedules")
    shifted_series = HourlySeries(shifted, calendar, name="forecast-shifted demand")

    realized = float(
        np.clip(shifted - actual_supply.values, 0.0, None).sum()
    )
    baseline = float(
        np.clip(demand.values - actual_supply.values, 0.0, None).sum()
    )

    from ..scheduling import schedule_carbon_aware

    oracle = schedule_carbon_aware(
        demand, actual_supply, actual_intensity, capacity_mw, flexible_ratio
    )
    oracle_deficit = float(
        np.clip(oracle.shifted_demand.values - actual_supply.values, 0.0, None).sum()
    )

    return OnlineScheduleResult(
        shifted_demand=shifted_series,
        realized_deficit_mwh=realized,
        oracle_deficit_mwh=oracle_deficit,
        baseline_deficit_mwh=baseline,
        moved_mwh=moved,
    )
