"""Day-ahead forecasters for renewable supply and grid carbon intensity.

The paper's scheduling analysis is offline — the scheduler sees the whole
year (§6: "We perform offline analyses ... A future implementation would
benefit from prior schedulers", citing time-series forecasting work).  This
module supplies that future implementation's missing piece: simple,
dependency-free day-ahead forecasters that see only history, so the online
scheduler in :mod:`repro.forecast.online` can be compared against the
paper's oracle.

All forecasters implement one method::

    forecast_day(history, day_of_year) -> 24 hourly values

where ``history`` contains actual values for all hours before that day.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries import HOURS_PER_DAY

__all__ = [
    "PersistenceForecaster",
    "ClimatologyForecaster",
    "BlendedForecaster",
    "forecast_series",
]


def _check_inputs(history: np.ndarray, day_of_year: int) -> None:
    if day_of_year < 0:
        raise ValueError(f"day_of_year must be non-negative, got {day_of_year}")
    if history.shape[0] < day_of_year * HOURS_PER_DAY:
        raise ValueError(
            f"history has {history.shape[0]} hours, fewer than the "
            f"{day_of_year * HOURS_PER_DAY} preceding day {day_of_year}"
        )


@dataclass(frozen=True)
class PersistenceForecaster:
    """Tomorrow looks like today: repeat the most recent full day.

    The canonical naive baseline for strongly diurnal signals.  For day 0
    (no history) it predicts zeros — the scheduler then behaves
    conservatively on the first day.
    """

    def forecast_day(self, history: np.ndarray, day_of_year: int) -> np.ndarray:
        _check_inputs(history, day_of_year)
        if day_of_year == 0:
            return np.zeros(HOURS_PER_DAY)
        start = (day_of_year - 1) * HOURS_PER_DAY
        return history[start : start + HOURS_PER_DAY].copy()


@dataclass(frozen=True)
class ClimatologyForecaster:
    """Tomorrow looks like the average day so far.

    Averages each hour-of-day over all completed days; smooth but blind to
    synoptic weather (a windy spell looks like an average one).
    """

    def forecast_day(self, history: np.ndarray, day_of_year: int) -> np.ndarray:
        _check_inputs(history, day_of_year)
        if day_of_year == 0:
            return np.zeros(HOURS_PER_DAY)
        days = history[: day_of_year * HOURS_PER_DAY].reshape(day_of_year, HOURS_PER_DAY)
        return days.mean(axis=0)


@dataclass(frozen=True)
class BlendedForecaster:
    """Convex blend of persistence and climatology.

    ``weight`` leans toward persistence (1.0 = pure persistence).  Around
    0.6-0.7 is a strong day-ahead baseline for wind, which persists on
    synoptic time scales but reverts to climatology beyond them.
    """

    weight: float = 0.65

    def __post_init__(self) -> None:
        if not 0.0 <= self.weight <= 1.0:
            raise ValueError(f"weight must be in [0, 1], got {self.weight}")

    def forecast_day(self, history: np.ndarray, day_of_year: int) -> np.ndarray:
        persistence = PersistenceForecaster().forecast_day(history, day_of_year)
        climatology = ClimatologyForecaster().forecast_day(history, day_of_year)
        return self.weight * persistence + (1.0 - self.weight) * climatology


def forecast_series(forecaster, actual: "np.ndarray") -> np.ndarray:
    """Roll a forecaster across a whole year of actuals.

    Returns the concatenated day-ahead forecasts (same length as
    ``actual``); each day's forecast sees only strictly earlier actual
    hours.  Used for computing year-level forecast-accuracy metrics.
    """
    values = np.asarray(actual, dtype=float)
    if values.ndim != 1 or values.shape[0] % HOURS_PER_DAY != 0:
        raise ValueError(
            f"actual must be a whole number of days of hourly values, got shape {values.shape}"
        )
    n_days = values.shape[0] // HOURS_PER_DAY
    out = np.empty_like(values)
    for day in range(n_days):
        out[day * HOURS_PER_DAY : (day + 1) * HOURS_PER_DAY] = forecaster.forecast_day(
            values, day
        )
    return out
