"""Day-ahead forecasting and forecast-driven (online) scheduling."""

from .metrics import (
    forecast_skill,
    mean_absolute_error,
    normalized_mae,
    root_mean_squared_error,
)
from .models import (
    BlendedForecaster,
    ClimatologyForecaster,
    PersistenceForecaster,
    forecast_series,
)
from .online import OnlineScheduleResult, schedule_with_forecast

__all__ = [
    "forecast_skill",
    "mean_absolute_error",
    "normalized_mae",
    "root_mean_squared_error",
    "BlendedForecaster",
    "ClimatologyForecaster",
    "PersistenceForecaster",
    "forecast_series",
    "OnlineScheduleResult",
    "schedule_with_forecast",
]
