"""Summary statistics over hourly traces.

These helpers back the paper's characterization figures: daily-total
histograms and yearly-average day profiles (Fig. 5), peak-to-trough swings
(Fig. 1, Fig. 3), and the "best ten days vs average" comparisons of §3.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .series import HourlySeries


def is_exact_zero(value: float) -> bool:
    """Whether ``value`` is exactly ``0.0`` (or ``-0.0``), bitwise.

    The blessed spelling of the degenerate-case guards scattered through
    the pipeline (``capacity == 0.0``, ``mean == 0.0``): the name records
    that an exact — not approximate — comparison is intended, which is
    why the ``repro lint`` float-equality rule (RL005) points here.
    Tolerance checks belong in ``math.isclose``/``np.isclose`` instead.
    """
    return value == 0.0  # repro-lint: disable=RL005 — the blessed exact check itself


def bitwise_equal(a: float, b: float) -> bool:
    """Whether ``a`` and ``b`` are the same IEEE-754 value.

    The blessed spelling for the repo's bitwise-determinism assertions
    (serial == parallel == shm == resumed): plain ``==`` semantics, but
    the name makes "exactly equal, no tolerance" reviewable.  Note the
    usual IEEE caveats apply: ``NaN != NaN`` and ``0.0 == -0.0``.
    """
    return a == b


@dataclass(frozen=True)
class Histogram:
    """A simple fixed-bin histogram.

    Attributes
    ----------
    bin_edges:
        ``n_bins + 1`` monotonically increasing edges.
    counts:
        Number of samples per bin.
    """

    bin_edges: Tuple[float, ...]
    counts: Tuple[int, ...]

    @property
    def n_samples(self) -> int:
        """Total number of samples binned."""
        return int(sum(self.counts))

    @property
    def bin_centers(self) -> Tuple[float, ...]:
        """Midpoint of each bin."""
        edges = self.bin_edges
        return tuple((edges[i] + edges[i + 1]) / 2.0 for i in range(len(self.counts)))

    def fractions(self) -> Tuple[float, ...]:
        """Counts normalized to fractions of the total."""
        n = self.n_samples
        if n == 0:
            return tuple(0.0 for _ in self.counts)
        return tuple(c / n for c in self.counts)


def histogram(samples: Sequence[float], n_bins: int = 20) -> Histogram:
    """Histogram of arbitrary samples with ``n_bins`` equal-width bins."""
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    array = np.asarray(samples, dtype=float)
    if array.size == 0:
        raise ValueError("cannot histogram an empty sample set")
    counts, edges = np.histogram(array, bins=n_bins)
    return Histogram(tuple(float(e) for e in edges), tuple(int(c) for c in counts))


def daily_total_histogram(series: HourlySeries, n_bins: int = 20) -> Histogram:
    """Histogram of per-day energy totals — the right column of Figure 5.

    High spread in this histogram is the paper's fingerprint of a volatile
    (wind-dominated) region; a tight histogram marks steady solar regions.
    """
    return histogram(series.daily_totals(), n_bins=n_bins)


def peak_to_trough_swing(series: HourlySeries) -> float:
    """Relative swing ``(max - min) / mean`` of a trace.

    The paper quotes ~20% CPU-utilization swings versus ~4% power swings for
    Meta datacenters (Fig. 3) and a >3x swing for California renewables
    (Fig. 1); this is the statistic behind those numbers.
    """
    mean = series.mean()
    if is_exact_zero(mean):
        raise ValueError("swing undefined for a zero-mean series")
    return (series.max() - series.min()) / mean


def best_days_ratio(series: HourlySeries, n_days: int = 10) -> float:
    """Mean daily total of the best ``n_days`` relative to the yearly mean.

    §3.2: "For BPAT, the best ten days of the year offer approximately 2.5
    times more renewable energy than the average."
    """
    if n_days < 1:
        raise ValueError(f"n_days must be >= 1, got {n_days}")
    totals = series.daily_totals()
    if n_days > totals.size:
        raise ValueError(f"n_days {n_days} exceeds days in year {totals.size}")
    mean = totals.mean()
    if is_exact_zero(mean):
        raise ValueError("ratio undefined when the yearly mean daily total is zero")
    best = np.sort(totals)[-n_days:]
    return float(best.mean() / mean)


def worst_days_ratio(series: HourlySeries, n_days: int = 10) -> float:
    """Mean daily total of the worst ``n_days`` relative to the yearly mean.

    Near-zero values flag the deep "supply valleys" that drive battery sizing
    in wind-only regions like Oregon/BPAT.
    """
    if n_days < 1:
        raise ValueError(f"n_days must be >= 1, got {n_days}")
    totals = series.daily_totals()
    if n_days > totals.size:
        raise ValueError(f"n_days {n_days} exceeds days in year {totals.size}")
    mean = totals.mean()
    if is_exact_zero(mean):
        raise ValueError("ratio undefined when the yearly mean daily total is zero")
    worst = np.sort(totals)[:n_days]
    return float(worst.mean() / mean)


def coefficient_of_variation(samples: Sequence[float]) -> float:
    """Standard deviation over mean — day-to-day volatility fingerprint."""
    array = np.asarray(samples, dtype=float)
    mean = array.mean()
    if is_exact_zero(mean):
        raise ValueError("coefficient of variation undefined for zero mean")
    return float(array.std() / mean)


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation between two equal-length sample vectors.

    Used by the Fig. 3 reproduction to quantify the CPU-utilization/power
    correlation of the energy-proportional server model.
    """
    ax = np.asarray(x, dtype=float)
    ay = np.asarray(y, dtype=float)
    if ax.shape != ay.shape:
        raise ValueError(f"shape mismatch: {ax.shape} vs {ay.shape}")
    if ax.size < 2:
        raise ValueError("need at least two samples for a correlation")
    if is_exact_zero(ax.std()) or is_exact_zero(ay.std()):
        raise ValueError("correlation undefined for a constant vector")
    return float(np.corrcoef(ax, ay)[0, 1])
