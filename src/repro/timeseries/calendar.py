"""Hourly calendar arithmetic for year-long simulation traces.

Carbon Explorer operates on hourly time series spanning a full calendar year
(the paper uses EIA grid data for 2020).  This module provides a small,
dependency-free calendar that maps a flat hour index (``0 .. n_hours - 1``)
onto day-of-year, hour-of-day, month, and weekday, without ever touching the
wall clock.  All simulations in the library share one :class:`YearCalendar`
so that demand, supply, and scheduling traces stay aligned.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

HOURS_PER_DAY = 24

_DAYS_IN_MONTH = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)

MONTH_NAMES = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)

WEEKDAY_NAMES = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


def is_leap_year(year: int) -> bool:
    """Return ``True`` if ``year`` is a Gregorian leap year."""
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def days_in_year(year: int) -> int:
    """Number of days in ``year`` (365 or 366)."""
    return 366 if is_leap_year(year) else 365


def days_in_month(year: int, month: int) -> int:
    """Number of days in ``month`` (1-based) of ``year``."""
    if not 1 <= month <= 12:
        raise ValueError(f"month must be in 1..12, got {month}")
    if month == 2 and is_leap_year(year):
        return 29
    return _DAYS_IN_MONTH[month - 1]


@dataclass(frozen=True)
class YearCalendar:
    """A calendar over one full year at hourly resolution.

    Parameters
    ----------
    year:
        Gregorian year the trace covers.  The paper's datasets are for 2020;
        that is also this library's default elsewhere.

    Examples
    --------
    >>> cal = YearCalendar(2020)
    >>> cal.n_hours
    8784
    >>> cal.hour_of_day(25)
    1
    >>> cal.day_of_year(25)
    1
    """

    year: int
    _month_start_day: Tuple[int, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.year < 1:
            raise ValueError(f"year must be positive, got {self.year}")
        starts: List[int] = []
        acc = 0
        for month in range(1, 13):
            starts.append(acc)
            acc += days_in_month(self.year, month)
        object.__setattr__(self, "_month_start_day", tuple(starts))

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def n_days(self) -> int:
        """Number of days in the year."""
        return days_in_year(self.year)

    @property
    def n_hours(self) -> int:
        """Number of hours in the year (8760 or 8784)."""
        return self.n_days * HOURS_PER_DAY

    # ------------------------------------------------------------------
    # Index decomposition
    # ------------------------------------------------------------------
    def _check_hour(self, hour: int) -> None:
        if not 0 <= hour < self.n_hours:
            raise IndexError(
                f"hour index {hour} out of range for year {self.year} "
                f"(0..{self.n_hours - 1})"
            )

    def hour_of_day(self, hour: int) -> int:
        """Hour of day (0-23) for flat hour index ``hour``."""
        self._check_hour(hour)
        return hour % HOURS_PER_DAY

    def day_of_year(self, hour: int) -> int:
        """Zero-based day of year for flat hour index ``hour``."""
        self._check_hour(hour)
        return hour // HOURS_PER_DAY

    def month_of(self, hour: int) -> int:
        """Month (1-12) containing flat hour index ``hour``."""
        day = self.day_of_year(hour)
        month = 12
        for m in range(12):
            if day < self._month_start_day[m]:
                month = m
                break
        return month

    def weekday(self, hour: int) -> int:
        """Weekday (0=Monday .. 6=Sunday) of the day containing ``hour``."""
        day = self.day_of_year(hour)
        jan1 = _dt.date(self.year, 1, 1).weekday()
        return (jan1 + day) % 7

    def is_weekend(self, hour: int) -> bool:
        """``True`` if ``hour`` falls on a Saturday or Sunday."""
        return self.weekday(hour) >= 5

    def date_of(self, hour: int) -> _dt.date:
        """Calendar date containing flat hour index ``hour``."""
        day = self.day_of_year(hour)
        return _dt.date(self.year, 1, 1) + _dt.timedelta(days=day)

    def label(self, hour: int) -> str:
        """Human-readable timestamp label, e.g. ``'Mar 05 14:00'``."""
        date = self.date_of(hour)
        return f"{MONTH_NAMES[date.month - 1]} {date.day:02d} {self.hour_of_day(hour):02d}:00"

    # ------------------------------------------------------------------
    # Range helpers
    # ------------------------------------------------------------------
    def day_slice(self, day: int) -> slice:
        """Slice of flat hour indices covering zero-based day ``day``."""
        if not 0 <= day < self.n_days:
            raise IndexError(f"day {day} out of range (0..{self.n_days - 1})")
        start = day * HOURS_PER_DAY
        return slice(start, start + HOURS_PER_DAY)

    def month_slice(self, month: int) -> slice:
        """Slice of flat hour indices covering ``month`` (1-based)."""
        if not 1 <= month <= 12:
            raise ValueError(f"month must be in 1..12, got {month}")
        start_day = self._month_start_day[month - 1]
        n_days = days_in_month(self.year, month)
        return slice(start_day * HOURS_PER_DAY, (start_day + n_days) * HOURS_PER_DAY)

    def iter_days(self) -> Iterator[slice]:
        """Iterate over one hour-index slice per day of the year."""
        for day in range(self.n_days):
            yield self.day_slice(day)

    def week_slice(self, start_day: int, n_days: int = 7) -> slice:
        """Slice of hour indices for a window of ``n_days`` starting at ``start_day``."""
        if n_days < 1:
            raise ValueError(f"n_days must be >= 1, got {n_days}")
        if not 0 <= start_day < self.n_days:
            raise IndexError(f"start_day {start_day} out of range")
        end_day = min(start_day + n_days, self.n_days)
        return slice(start_day * HOURS_PER_DAY, end_day * HOURS_PER_DAY)


#: The calendar used throughout the library unless a caller overrides it.
#: 2020 matches the paper's EIA dataset year.
DEFAULT_CALENDAR = YearCalendar(2020)
