"""Hourly time-series substrate shared by all Carbon Explorer subsystems."""

from .calendar import (
    DEFAULT_CALENDAR,
    HOURS_PER_DAY,
    MONTH_NAMES,
    WEEKDAY_NAMES,
    YearCalendar,
    days_in_month,
    days_in_year,
    is_leap_year,
)
from .series import HourlySeries
from .stats import (
    Histogram,
    best_days_ratio,
    coefficient_of_variation,
    daily_total_histogram,
    histogram,
    peak_to_trough_swing,
    pearson_correlation,
    worst_days_ratio,
)

__all__ = [
    "DEFAULT_CALENDAR",
    "HOURS_PER_DAY",
    "MONTH_NAMES",
    "WEEKDAY_NAMES",
    "YearCalendar",
    "days_in_month",
    "days_in_year",
    "is_leap_year",
    "HourlySeries",
    "Histogram",
    "best_days_ratio",
    "coefficient_of_variation",
    "daily_total_histogram",
    "histogram",
    "peak_to_trough_swing",
    "pearson_correlation",
    "worst_days_ratio",
]
