"""The :class:`HourlySeries` container — the library's universal trace type.

Every quantity Carbon Explorer manipulates — datacenter power demand,
renewable supply, grid carbon intensity, battery charge level — is an hourly
time series over one calendar year.  ``HourlySeries`` wraps a numpy vector
with the :class:`~repro.timeseries.calendar.YearCalendar` it is aligned to,
and offers calendar-aware aggregation plus elementwise arithmetic that
enforces alignment.  Arithmetic between series from different calendars is an
error, which catches a whole class of silent misalignment bugs.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from .calendar import HOURS_PER_DAY, DEFAULT_CALENDAR, YearCalendar

Number = Union[int, float]
_Operand = Union["HourlySeries", Number]


class HourlySeries:
    """An immutable hourly time series aligned to a :class:`YearCalendar`.

    Parameters
    ----------
    values:
        Sequence of ``calendar.n_hours`` floats.
    calendar:
        Calendar the values are aligned to; defaults to 2020.
    name:
        Optional human-readable label carried through arithmetic.
    """

    __slots__ = ("_values", "_calendar", "name")

    def __init__(
        self,
        values: Union[Sequence[float], np.ndarray],
        calendar: YearCalendar = DEFAULT_CALENDAR,
        name: str = "",
    ) -> None:
        array = np.asarray(values, dtype=float)
        if array.ndim != 1:
            raise ValueError(f"values must be one-dimensional, got shape {array.shape}")
        if array.shape[0] != calendar.n_hours:
            raise ValueError(
                f"series length {array.shape[0]} does not match calendar year "
                f"{calendar.year} ({calendar.n_hours} hours)"
            )
        if not np.all(np.isfinite(array)):
            raise ValueError("series values must be finite (no NaN/inf)")
        array = array.copy()
        array.setflags(write=False)
        self._values = array
        self._calendar = calendar
        self.name = name

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(
        cls,
        value: float,
        calendar: YearCalendar = DEFAULT_CALENDAR,
        name: str = "",
    ) -> "HourlySeries":
        """A series holding ``value`` in every hour."""
        return cls(np.full(calendar.n_hours, float(value)), calendar, name)

    @classmethod
    def zeros(
        cls, calendar: YearCalendar = DEFAULT_CALENDAR, name: str = ""
    ) -> "HourlySeries":
        """An all-zero series."""
        return cls.constant(0.0, calendar, name)

    @classmethod
    def from_buffer(
        cls,
        values: np.ndarray,
        calendar: YearCalendar = DEFAULT_CALENDAR,
        name: str = "",
    ) -> "HourlySeries":
        """Wrap an existing float64 array without copying it.

        The zero-copy construction path of the shared-memory trace plane
        (see :mod:`repro.core.shm`): ``values`` is typically a numpy view
        over a ``multiprocessing.shared_memory`` buffer, and the series
        adopts it as its backing store directly.  Validation matches the
        normal constructor (one-dimensional, calendar-length, finite); the
        array is marked read-only in place, so the caller must not hold a
        writable alias to the same memory.
        """
        array = np.asarray(values)
        if array.dtype != np.float64:
            raise ValueError(
                f"from_buffer requires a float64 array, got dtype {array.dtype}"
            )
        if array.ndim != 1:
            raise ValueError(f"values must be one-dimensional, got shape {array.shape}")
        if array.shape[0] != calendar.n_hours:
            raise ValueError(
                f"series length {array.shape[0]} does not match calendar year "
                f"{calendar.year} ({calendar.n_hours} hours)"
            )
        if not np.all(np.isfinite(array)):
            raise ValueError("series values must be finite (no NaN/inf)")
        array.setflags(write=False)
        series = cls.__new__(cls)
        series._values = array
        series._calendar = calendar
        series.name = name
        return series

    @classmethod
    def from_daily_profile(
        cls,
        profile: Sequence[float],
        calendar: YearCalendar = DEFAULT_CALENDAR,
        name: str = "",
    ) -> "HourlySeries":
        """Tile a 24-value daily profile across the whole year."""
        prof = np.asarray(profile, dtype=float)
        if prof.shape != (HOURS_PER_DAY,):
            raise ValueError(f"profile must have 24 values, got shape {prof.shape}")
        return cls(np.tile(prof, calendar.n_days), calendar, name)

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The underlying (read-only) numpy vector."""
        return self._values

    @property
    def calendar(self) -> YearCalendar:
        """The calendar this series is aligned to."""
        return self._calendar

    def __len__(self) -> int:
        return self._values.shape[0]

    def __getitem__(self, index):
        return self._values[index]

    def __iter__(self):
        return iter(self._values)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"HourlySeries({self._calendar.year},{label} mean={self.mean():.3f}, "
            f"min={self.min():.3f}, max={self.max():.3f})"
        )

    def with_name(self, name: str) -> "HourlySeries":
        """Copy of this series carrying a new label."""
        return HourlySeries(self._values, self._calendar, name)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: _Operand) -> np.ndarray:
        if isinstance(other, HourlySeries):
            if other._calendar != self._calendar:
                raise ValueError(
                    "cannot combine series on different calendars: "
                    f"{self._calendar.year} vs {other._calendar.year}"
                )
            return other._values
        return np.asarray(float(other))

    def _binary(self, other: _Operand, op: Callable) -> "HourlySeries":
        return HourlySeries(op(self._values, self._coerce(other)), self._calendar, self.name)

    def __add__(self, other: _Operand) -> "HourlySeries":
        return self._binary(other, np.add)

    __radd__ = __add__

    def __sub__(self, other: _Operand) -> "HourlySeries":
        return self._binary(other, np.subtract)

    def __rsub__(self, other: _Operand) -> "HourlySeries":
        return HourlySeries(self._coerce(other) - self._values, self._calendar, self.name)

    def __mul__(self, other: _Operand) -> "HourlySeries":
        return self._binary(other, np.multiply)

    __rmul__ = __mul__

    def __truediv__(self, other: _Operand) -> "HourlySeries":
        divisor = self._coerce(other)
        if np.any(divisor == 0.0):  # repro-lint: disable=RL005 — elementwise array guard; stats.py imports this module
            raise ZeroDivisionError("division by zero in HourlySeries")
        return HourlySeries(self._values / divisor, self._calendar, self.name)

    def __neg__(self) -> "HourlySeries":
        return HourlySeries(-self._values, self._calendar, self.name)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HourlySeries)
            and self._calendar == other._calendar
            and np.array_equal(self._values, other._values)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash for immutables
        return hash((self._calendar, self._values.tobytes()))

    def clip(
        self, lower: Optional[float] = None, upper: Optional[float] = None
    ) -> "HourlySeries":
        """Elementwise clamp to ``[lower, upper]`` (either bound optional)."""
        return HourlySeries(
            np.clip(self._values, lower, upper), self._calendar, self.name
        )

    def positive_part(self) -> "HourlySeries":
        """``max(x, 0)`` per hour — e.g. the unmet-demand part of a deficit."""
        return self.clip(lower=0.0)

    def minimum(self, other: _Operand) -> "HourlySeries":
        """Elementwise minimum with a scalar or aligned series."""
        return self._binary(other, np.minimum)

    def maximum(self, other: _Operand) -> "HourlySeries":
        """Elementwise maximum with a scalar or aligned series."""
        return self._binary(other, np.maximum)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def total(self) -> float:
        """Sum over all hours (e.g. MWh for an MW power series)."""
        return float(self._values.sum())

    def mean(self) -> float:
        """Average hourly value."""
        return float(self._values.mean())

    def min(self) -> float:
        """Minimum hourly value."""
        return float(self._values.min())

    def max(self) -> float:
        """Maximum hourly value."""
        return float(self._values.max())

    def std(self) -> float:
        """Population standard deviation of hourly values."""
        return float(self._values.std())

    def argmax(self) -> int:
        """Flat hour index of the maximum value."""
        return int(self._values.argmax())

    def argmin(self) -> int:
        """Flat hour index of the minimum value."""
        return int(self._values.argmin())

    # ------------------------------------------------------------------
    # Calendar-aware views
    # ------------------------------------------------------------------
    def day(self, day: int) -> np.ndarray:
        """The 24 values of zero-based day ``day``."""
        return self._values[self._calendar.day_slice(day)]

    def daily_totals(self) -> np.ndarray:
        """Vector of per-day sums (length ``n_days``)."""
        return self._values.reshape(self._calendar.n_days, HOURS_PER_DAY).sum(axis=1)

    def daily_means(self) -> np.ndarray:
        """Vector of per-day means (length ``n_days``)."""
        return self._values.reshape(self._calendar.n_days, HOURS_PER_DAY).mean(axis=1)

    def average_day_profile(self) -> np.ndarray:
        """Mean value for each hour-of-day across the year (24 values).

        This is the "Yearly Average" day of the paper's Figure 5.
        """
        return self._values.reshape(self._calendar.n_days, HOURS_PER_DAY).mean(axis=0)

    def as_average_day(self) -> "HourlySeries":
        """A series replacing every day with the yearly-average day profile.

        Used to reproduce the "average-day fallacy" analysis of Figure 8: design
        decisions made against this flattened series are overly optimistic.
        """
        return HourlySeries(
            np.tile(self.average_day_profile(), self._calendar.n_days),
            self._calendar,
            f"{self.name} (avg day)" if self.name else "avg day",
        )

    def window(self, start_day: int, n_days: int) -> np.ndarray:
        """Values for a window of ``n_days`` starting at zero-based ``start_day``."""
        return self._values[self._calendar.week_slice(start_day, n_days)]

    def monthly_totals(self) -> np.ndarray:
        """Vector of per-month sums (length 12)."""
        return np.array(
            [self._values[self._calendar.month_slice(m)].sum() for m in range(1, 13)]
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[np.ndarray], np.ndarray]) -> "HourlySeries":
        """Apply a vectorized function to the values, keeping alignment."""
        return HourlySeries(fn(self._values), self._calendar, self.name)

    def replace_days(
        self, day_values: Iterable, days: Iterable[int]
    ) -> "HourlySeries":
        """Copy of the series with the listed days' 24-hour blocks replaced."""
        out = self._values.copy()
        for day, block in zip(days, day_values):
            block = np.asarray(block, dtype=float)
            if block.shape != (HOURS_PER_DAY,):
                raise ValueError(
                    f"replacement for day {day} must have 24 values, got {block.shape}"
                )
            out[self._calendar.day_slice(day)] = block
        return HourlySeries(out, self._calendar, self.name)

    def scale_to_peak(self, peak: float) -> "HourlySeries":
        """Linearly rescale so the maximum equals ``peak``.

        This is exactly the paper's renewable-investment projection rule
        (§4.1): "It takes the maximum generated solar and wind power throughout
        the year as the maximum capacity of the local grid. Then, the hourly
        generation data is linearly scaled to the desired renewable investment
        capacity."
        """
        if peak < 0:
            raise ValueError(f"peak must be non-negative, got {peak}")
        current = self.max()
        if current == 0.0:  # repro-lint: disable=RL005 — stats.py imports this module; helper would cycle
            if peak == 0.0:  # repro-lint: disable=RL005 — stats.py imports this module; helper would cycle
                return self
            raise ValueError("cannot scale an all-zero series to a positive peak")
        return HourlySeries(self._values * (peak / current), self._calendar, self.name)
