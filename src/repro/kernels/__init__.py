"""Array-native simulation kernels for the hot year-long loops.

Design-space sweeps call the battery, scheduling, and combined simulations
thousands of times per region, so their per-call cost bounds how fine an
exhaustive grid can be.  The public modules (:mod:`repro.battery.simulator`,
:mod:`repro.scheduling.greedy`, :mod:`repro.scheduling.combined`) validate
inputs, open tracing spans, and build rich result objects — and delegate the
actual year of simulation to the kernels here.

Kernel contract:

* inputs are **raw numpy arrays** (plus plain-float spec constants hoisted
  out of the loop) — no :class:`~repro.timeseries.HourlySeries`, no
  :class:`~repro.battery.clc.Battery` objects, no per-hour validation;
* outputs are bitwise identical to the original per-hour object
  implementations (the loops replicate the exact IEEE operation order of
  :meth:`Battery.charge` / :meth:`Battery.discharge` and the greedy
  per-day scheduler);
* degenerate paths (no battery, no scheduler) are fully vectorized.

Arrays may be any length — the kernels are year-agnostic, which also makes
them cheap to property-test against the reference implementations on short
traces.
"""

from .batch import (
    BatteryRunBatch,
    CombinedRunBatch,
    ScheduleRunBatch,
    battery_run_batch,
    combined_run_batch,
    schedule_run_batch,
)
from .battery import (
    BatteryRunArrays,
    BatterySeed,
    battery_import_exceeds,
    battery_run,
    battery_run_seeded,
    renewables_only_run,
)
from .combined import CombinedRunArrays, combined_run
from .greedy import schedule_run

__all__ = [
    "BatteryRunArrays",
    "BatterySeed",
    "battery_import_exceeds",
    "battery_run",
    "battery_run_seeded",
    "renewables_only_run",
    "CombinedRunArrays",
    "combined_run",
    "schedule_run",
    "BatteryRunBatch",
    "CombinedRunBatch",
    "ScheduleRunBatch",
    "battery_run_batch",
    "combined_run_batch",
    "schedule_run_batch",
]
