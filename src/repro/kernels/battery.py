"""Object-free kernels for the C/L/C battery year loop (§4.2).

The greedy charge-on-surplus / discharge-on-deficit policy is inherently
sequential (each hour's limits depend on the previous hour's energy
content), so the general case stays a Python loop — but one over plain
floats with every spec constant hoisted to a local, instead of per-hour
:class:`~repro.battery.clc.Battery` method calls with argument validation
and property lookups.  The zero-capacity case degenerates to pure
arithmetic and is fully vectorized.

The loop body replicates the exact IEEE operation order of
``Battery.charge`` / ``Battery.discharge`` (with ``duration_h = 1``), so
kernel results are bitwise identical to the original implementation.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np


class BatteryRunArrays(NamedTuple):
    """Raw-array outcome of one battery run (see ``BatterySimResult``).

    ``grid_import``/``surplus``/``charge_level`` are hourly arrays aligned
    with the inputs; ``charged_mwh``/``discharged_mwh`` are the meter
    totals over the run.
    """

    grid_import: np.ndarray
    surplus: np.ndarray
    charge_level: np.ndarray
    charged_mwh: float
    discharged_mwh: float


def renewables_only_run(demand: np.ndarray, supply: np.ndarray):
    """Vectorized no-battery case: ``(grid_import, surplus)`` arrays.

    The grid covers every hourly shortfall and every hourly excess is
    spilled — the positive parts of the two gap directions.
    """
    grid_import = np.maximum(demand - supply, 0.0)
    surplus = np.maximum(supply - demand, 0.0)
    return grid_import, surplus


def battery_run(
    demand: np.ndarray,
    supply: np.ndarray,
    *,
    capacity_mwh: float,
    floor_mwh: float,
    max_charge_mw: float,
    max_discharge_mw: float,
    charge_efficiency: float,
    discharge_efficiency: float,
    initial_energy_mwh: float,
) -> BatteryRunArrays:
    """One greedy battery run over aligned hourly ``demand``/``supply`` arrays.

    All constants are the :class:`~repro.battery.clc.BatterySpec` values the
    wrapper hoists once per call; ``initial_energy_mwh`` is the starting
    energy content (``floor + soc * (capacity - floor)``).
    """
    n_hours = demand.shape[0]
    if capacity_mwh == 0.0:  # repro-lint: disable=RL005 — exact degenerate-case guard; kernels import nothing
        grid_import, surplus = renewables_only_run(demand, supply)
        return BatteryRunArrays(grid_import, surplus, np.zeros(n_hours), 0.0, 0.0)

    demand_list = demand.tolist()
    supply_list = supply.tolist()
    grid_import = [0.0] * n_hours
    surplus = [0.0] * n_hours
    charge_level = [0.0] * n_hours

    energy = initial_energy_mwh
    charged = 0.0
    discharged = 0.0
    eta_charge = charge_efficiency
    eta_discharge = discharge_efficiency

    for hour in range(n_hours):
        gap = supply_list[hour] - demand_list[hour]
        if gap >= 0.0:
            if gap > 0.0:
                power = gap if gap < max_charge_mw else max_charge_mw
                limit = (capacity_mwh - energy) / eta_charge
                if power > limit:
                    power = limit
                if power < 0.0:
                    power = 0.0
                energy += power * eta_charge
                charged += power
                surplus[hour] = gap - power
        else:
            requested = -gap
            power = requested if requested < max_discharge_mw else max_discharge_mw
            limit = (energy - floor_mwh) * eta_discharge
            if power > limit:
                power = limit
            if power < 0.0:
                power = 0.0
            energy -= power / eta_discharge
            discharged += power
            grid_import[hour] = requested - power
        charge_level[hour] = energy

    return BatteryRunArrays(
        np.asarray(grid_import),
        np.asarray(surplus),
        np.asarray(charge_level),
        charged,
        discharged,
    )


class BatterySeed:
    """Capacity-independent saturation structure of one (demand, supply) pair.

    Exhaustive sweeps walk the battery-capacity axis with the *same*
    demand and supply traces: adjacent grid points differ only in
    ``capacity_mwh``.  Everything here depends on the traces alone, so it
    is computed once per investment and seeds every capacity's year loop
    (:func:`battery_run_seeded`):

    * ``gap_list`` — the hourly ``supply - demand`` gap, hoisted out of
      every run's loop;
    * ``next_deficit`` / ``next_surplus`` — for each hour, the next hour
      with a strict deficit (``gap < 0``) / strict surplus (``gap > 0``),
      or ``n_hours``.  These delimit the *saturation stretches*: a battery
      sitting at exactly full capacity stays there (charge power clips to
      exactly ``0.0``) until the next deficit, and one at exactly the DoD
      floor stays there until the next surplus — for any capacity;
    * ``surplus_if_full`` / ``import_if_empty`` — the output values the
      exact scalar recurrence produces during those stretches (``gap`` on
      surplus hours / ``-gap`` on deficit hours), precomputed so a stretch
      is committed as one array copy.

    The greedy policy spends 40–70 % of a realistic year pinned at one of
    the two rails (the U-shaped Fig. 16 histogram), which is what makes
    the fast-forward pay.
    """

    __slots__ = (
        "demand",
        "supply",
        "gap",
        "gap_list",
        "next_deficit",
        "next_surplus",
        "surplus_if_full",
        "import_if_empty",
        "n_hours",
    )

    def __init__(self, demand: np.ndarray, supply: np.ndarray) -> None:
        n_hours = demand.shape[0]
        if supply.shape[0] != n_hours:
            raise ValueError(
                f"demand ({n_hours}) and supply ({supply.shape[0]}) lengths differ"
            )
        # Elementwise float64 subtraction is bitwise-identical to the
        # scalar per-hour subtraction the plain kernel performs.
        gap = np.subtract(supply, demand)
        hours = np.arange(n_hours)
        self.demand = demand
        self.supply = supply
        self.gap = gap
        self.gap_list = gap.tolist()
        self.n_hours = n_hours
        self.next_deficit = np.minimum.accumulate(
            np.where(gap < 0.0, hours, n_hours)[::-1]
        )[::-1]
        self.next_surplus = np.minimum.accumulate(
            np.where(gap > 0.0, hours, n_hours)[::-1]
        )[::-1]
        self.surplus_if_full = np.where(gap > 0.0, gap, 0.0)
        self.import_if_empty = np.where(gap < 0.0, np.negative(gap), 0.0)

    def matches(self, demand: np.ndarray, supply: np.ndarray) -> bool:
        """Whether this seed was built from exactly these traces."""
        return (
            (demand is self.demand or np.array_equal(demand, self.demand))
            and (supply is self.supply or np.array_equal(supply, self.supply))
        )


def battery_run_seeded(
    seed: BatterySeed,
    *,
    capacity_mwh: float,
    floor_mwh: float,
    max_charge_mw: float,
    max_discharge_mw: float,
    charge_efficiency: float,
    discharge_efficiency: float,
    initial_energy_mwh: float,
) -> BatteryRunArrays:
    """:func:`battery_run` seeded with a precomputed :class:`BatterySeed`.

    Bitwise-identical output (property-tested in
    ``tests/kernels/test_battery_seeded.py``).  The year loop is the same
    exact scalar recurrence, but whenever the energy content sits at
    exactly ``capacity_mwh`` (or exactly ``floor_mwh``), the recurrence is
    a no-op until the next deficit (surplus) hour — charge power clips to
    ``(capacity - energy) / eta = +0.0`` — so the whole stretch is
    committed from the seed's precomputed arrays in one slice copy.  The
    battery starts full in sweeps and the rails re-pin constantly (the
    ``(x / eta) * eta`` round-trip is exact for a large fraction of
    doubles), so the fast-forwards typically cover 40–70 % of the year.
    """
    n_hours = seed.n_hours
    if capacity_mwh == 0.0:  # repro-lint: disable=RL005 — exact degenerate-case guard; kernels import nothing
        grid_import, surplus = renewables_only_run(seed.demand, seed.supply)
        return BatteryRunArrays(grid_import, surplus, np.zeros(n_hours), 0.0, 0.0)

    gap_list = seed.gap_list
    next_deficit = seed.next_deficit
    next_surplus = seed.next_surplus
    grid_import = np.zeros(n_hours)
    surplus = np.zeros(n_hours)
    charge_level = np.empty(n_hours)

    energy = initial_energy_mwh
    charged = 0.0
    discharged = 0.0
    eta_charge = charge_efficiency
    eta_discharge = discharge_efficiency

    hour = 0
    while hour < n_hours:
        gap = gap_list[hour]
        if energy == capacity_mwh and gap >= 0.0:
            # Pinned at full: every hour until the next deficit charges
            # exactly 0.0 MW and spills the whole gap.
            stop = int(next_deficit[hour])
            surplus[hour:stop] = seed.surplus_if_full[hour:stop]
            charge_level[hour:stop] = energy
            hour = stop
            continue
        if energy == floor_mwh and gap <= 0.0:
            # Pinned at the DoD floor: every hour until the next surplus
            # discharges exactly 0.0 MW and imports the whole deficit.
            stop = int(next_surplus[hour])
            grid_import[hour:stop] = seed.import_if_empty[hour:stop]
            charge_level[hour:stop] = energy
            hour = stop
            continue
        # Off the rails: the plain kernel's exact loop body.
        if gap >= 0.0:
            if gap > 0.0:
                power = gap if gap < max_charge_mw else max_charge_mw
                limit = (capacity_mwh - energy) / eta_charge
                if power > limit:
                    power = limit
                if power < 0.0:
                    power = 0.0
                energy += power * eta_charge
                charged += power
                surplus[hour] = gap - power
        else:
            requested = -gap
            power = requested if requested < max_discharge_mw else max_discharge_mw
            limit = (energy - floor_mwh) * eta_discharge
            if power > limit:
                power = limit
            if power < 0.0:
                power = 0.0
            energy -= power / eta_discharge
            discharged += power
            grid_import[hour] = requested - power
        charge_level[hour] = energy
        hour += 1

    return BatteryRunArrays(grid_import, surplus, charge_level, charged, discharged)


def battery_import_exceeds(
    demand: np.ndarray,
    supply: np.ndarray,
    *,
    threshold_mwh: float,
    capacity_mwh: float,
    floor_mwh: float,
    max_charge_mw: float,
    max_discharge_mw: float,
    charge_efficiency: float,
    discharge_efficiency: float,
    initial_energy_mwh: float,
) -> bool:
    """Whether total grid import of a battery run exceeds ``threshold_mwh``.

    The capacity-search predicate ("does this battery still leave a
    deficit?") does not need the full traces: hourly imports are
    non-negative, so the cumulative total is monotone and the year loop can
    exit the moment it crosses the threshold — for undersized capacities
    that is typically within the first winter week.  A run that never
    crosses (the exactly-zero-deficit midpoints of the binary search)
    completes the year and returns ``False``.  The zero-capacity probe is
    pure vector arithmetic.
    """
    if capacity_mwh == 0.0:  # repro-lint: disable=RL005 — exact degenerate-case guard; kernels import nothing
        return float(np.maximum(demand - supply, 0.0).sum()) > threshold_mwh

    demand_list = demand.tolist()
    supply_list = supply.tolist()
    energy = initial_energy_mwh
    eta_charge = charge_efficiency
    eta_discharge = discharge_efficiency
    total_import = 0.0

    for hour in range(demand.shape[0]):
        gap = supply_list[hour] - demand_list[hour]
        if gap >= 0.0:
            if gap > 0.0:
                power = gap if gap < max_charge_mw else max_charge_mw
                limit = (capacity_mwh - energy) / eta_charge
                if power > limit:
                    power = limit
                if power < 0.0:
                    power = 0.0
                energy += power * eta_charge
        else:
            requested = -gap
            power = requested if requested < max_discharge_mw else max_discharge_mw
            limit = (energy - floor_mwh) * eta_discharge
            if power > limit:
                power = limit
            if power < 0.0:
                power = 0.0
            energy -= power / eta_discharge
            total_import += requested - power
            if total_import > threshold_mwh:
                return True
    return total_import > threshold_mwh
