"""Object-free kernels for the C/L/C battery year loop (§4.2).

The greedy charge-on-surplus / discharge-on-deficit policy is inherently
sequential (each hour's limits depend on the previous hour's energy
content), so the general case stays a Python loop — but one over plain
floats with every spec constant hoisted to a local, instead of per-hour
:class:`~repro.battery.clc.Battery` method calls with argument validation
and property lookups.  The zero-capacity case degenerates to pure
arithmetic and is fully vectorized.

The loop body replicates the exact IEEE operation order of
``Battery.charge`` / ``Battery.discharge`` (with ``duration_h = 1``), so
kernel results are bitwise identical to the original implementation.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np


class BatteryRunArrays(NamedTuple):
    """Raw-array outcome of one battery run (see ``BatterySimResult``).

    ``grid_import``/``surplus``/``charge_level`` are hourly arrays aligned
    with the inputs; ``charged_mwh``/``discharged_mwh`` are the meter
    totals over the run.
    """

    grid_import: np.ndarray
    surplus: np.ndarray
    charge_level: np.ndarray
    charged_mwh: float
    discharged_mwh: float


def renewables_only_run(demand: np.ndarray, supply: np.ndarray):
    """Vectorized no-battery case: ``(grid_import, surplus)`` arrays.

    The grid covers every hourly shortfall and every hourly excess is
    spilled — the positive parts of the two gap directions.
    """
    grid_import = np.maximum(demand - supply, 0.0)
    surplus = np.maximum(supply - demand, 0.0)
    return grid_import, surplus


def battery_run(
    demand: np.ndarray,
    supply: np.ndarray,
    *,
    capacity_mwh: float,
    floor_mwh: float,
    max_charge_mw: float,
    max_discharge_mw: float,
    charge_efficiency: float,
    discharge_efficiency: float,
    initial_energy_mwh: float,
) -> BatteryRunArrays:
    """One greedy battery run over aligned hourly ``demand``/``supply`` arrays.

    All constants are the :class:`~repro.battery.clc.BatterySpec` values the
    wrapper hoists once per call; ``initial_energy_mwh`` is the starting
    energy content (``floor + soc * (capacity - floor)``).
    """
    n_hours = demand.shape[0]
    if capacity_mwh == 0.0:
        grid_import, surplus = renewables_only_run(demand, supply)
        return BatteryRunArrays(grid_import, surplus, np.zeros(n_hours), 0.0, 0.0)

    demand_list = demand.tolist()
    supply_list = supply.tolist()
    grid_import = [0.0] * n_hours
    surplus = [0.0] * n_hours
    charge_level = [0.0] * n_hours

    energy = initial_energy_mwh
    charged = 0.0
    discharged = 0.0
    eta_charge = charge_efficiency
    eta_discharge = discharge_efficiency

    for hour in range(n_hours):
        gap = supply_list[hour] - demand_list[hour]
        if gap >= 0.0:
            if gap > 0.0:
                power = gap if gap < max_charge_mw else max_charge_mw
                limit = (capacity_mwh - energy) / eta_charge
                if power > limit:
                    power = limit
                if power < 0.0:
                    power = 0.0
                energy += power * eta_charge
                charged += power
                surplus[hour] = gap - power
        else:
            requested = -gap
            power = requested if requested < max_discharge_mw else max_discharge_mw
            limit = (energy - floor_mwh) * eta_discharge
            if power > limit:
                power = limit
            if power < 0.0:
                power = 0.0
            energy -= power / eta_discharge
            discharged += power
            grid_import[hour] = requested - power
        charge_level[hour] = energy

    return BatteryRunArrays(
        np.asarray(grid_import),
        np.asarray(surplus),
        np.asarray(charge_level),
        charged,
        discharged,
    )


def battery_import_exceeds(
    demand: np.ndarray,
    supply: np.ndarray,
    *,
    threshold_mwh: float,
    capacity_mwh: float,
    floor_mwh: float,
    max_charge_mw: float,
    max_discharge_mw: float,
    charge_efficiency: float,
    discharge_efficiency: float,
    initial_energy_mwh: float,
) -> bool:
    """Whether total grid import of a battery run exceeds ``threshold_mwh``.

    The capacity-search predicate ("does this battery still leave a
    deficit?") does not need the full traces: hourly imports are
    non-negative, so the cumulative total is monotone and the year loop can
    exit the moment it crosses the threshold — for undersized capacities
    that is typically within the first winter week.  A run that never
    crosses (the exactly-zero-deficit midpoints of the binary search)
    completes the year and returns ``False``.  The zero-capacity probe is
    pure vector arithmetic.
    """
    if capacity_mwh == 0.0:
        return float(np.maximum(demand - supply, 0.0).sum()) > threshold_mwh

    demand_list = demand.tolist()
    supply_list = supply.tolist()
    energy = initial_energy_mwh
    eta_charge = charge_efficiency
    eta_discharge = discharge_efficiency
    total_import = 0.0

    for hour in range(demand.shape[0]):
        gap = supply_list[hour] - demand_list[hour]
        if gap >= 0.0:
            if gap > 0.0:
                power = gap if gap < max_charge_mw else max_charge_mw
                limit = (capacity_mwh - energy) / eta_charge
                if power > limit:
                    power = limit
                if power < 0.0:
                    power = 0.0
                energy += power * eta_charge
        else:
            requested = -gap
            power = requested if requested < max_discharge_mw else max_discharge_mw
            limit = (energy - floor_mwh) * eta_discharge
            if power > limit:
                power = limit
            if power < 0.0:
                power = 0.0
            energy -= power / eta_discharge
            total_import += requested - power
            if total_import > threshold_mwh:
                return True
    return total_import > threshold_mwh
