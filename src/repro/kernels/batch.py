"""Batched (design × hour) kernels for whole-grid sweeps.

The serial kernels (:mod:`.battery`, :mod:`.greedy`, :mod:`.combined`)
spend one Python year-loop per design; an exhaustive sweep multiplies that
loop by the grid size.  The kernels here run the *same* hour loop once for
a whole block of designs: ``supply`` becomes a ``(D, H)`` block — one row
per design's solar/wind mix, broadcast from the memoized per-axis
projections — and every per-design scalar (battery capacity, DoD floor,
datacenter capacity, flexible ratio) becomes a ``(D,)`` column, so each
hour's state update is a handful of vectorized row-wise operations instead
of ``D`` interpreter iterations.

Bitwise contract
----------------

Every batch kernel is **bitwise identical** to mapping its serial
counterpart over the rows (property-tested in
``tests/kernels/test_batch.py``).  That is only possible because numpy's
elementwise ufuncs perform the same IEEE-754 operation per lane that the
scalar loop performs per design; the subtleties are sign-of-zero and
reduction order:

* masked updates use the multiply-by-bool idiom followed by ``+ 0.0``
  normalization (``x * False`` is ``-0.0`` when ``x`` is negative, and
  adding ``+0.0`` maps ``-0.0`` to ``+0.0`` while leaving every other
  double untouched), after which an unconditional ``+=`` / ``-=`` is a
  bitwise no-op in the masked-off lanes;
* meter totals accumulate as explicit per-hour (per-move) vector adds —
  a left fold in the serial visit order — never ``np.sum``, whose pairwise
  reduction would round differently;
* clamp chains replicate the serial comparison order exactly
  (``min`` with the serial tie-breaking side, then the limit clamp, then
  the ``max(…, 0.0)`` floor), which also normalizes any ``-0.0``
  candidate power to ``+0.0`` exactly like the scalar branches do.

Degenerate rows (zero battery capacity, zero flexible ratio) stay in the
block: their lanes reproduce the serial kernels' vectorized short-circuits
bitwise (``-(a - b)`` equals ``b - a`` bitwise, and the masked lanes never
observe a stray ``-0.0`` thanks to the normalizations above), so callers
never need to split a block by configuration.

The batch battery kernel threads
:class:`~repro.kernels.battery.BatterySeed`'s rail fast-forward through
the block via the optional ``seeds`` argument: contiguous row groups that
share one (demand, supply) pair — every capacity point of an investment
shares the same projected supply row, one projection-cache hit per
investment — also share the seed's gap trace and saturation stretches, so
each group runs its own hour loop that skips a stretch whenever *all* of
the group's rows sit at their rail (exactly full, or exactly at the DoD
floor).  Rows pin and unpin at different hours across capacities, so a
group falls back to the per-hour chain while any row is off its rail;
the group re-synchronizes at the rails constantly (the battery starts
full, and the ``(x / eta) * eta`` round-trip is exact for a large
fraction of doubles), which is what makes the group-level skip pay.
Ungrouped rows take the plain lockstep loop, and an unseeded call is the
plain lockstep loop over the whole block — the bitwise oracle for the
seeded path (property-tested in ``tests/kernels/test_batch_seeded.py``).

Kernel purity: inputs are read-only (gathers copy; every mutated array is
freshly allocated here), there is no I/O, and the only imports are numpy
and stdlib containers — the same contract RL003 enforces for the serial
kernels.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

#: Mirrors ``combined_run``'s queue epsilon (MWh).
_EPSILON_MWH = 1e-9

#: Mirrors ``schedule_run``'s move epsilon (MW).
_MIN_MOVE_MW = 1e-9

_HOURS_PER_DAY = 24

#: Column width of the blocked (H, D) -> (D, H) transpose copies.
_TRANSPOSE_BLOCK = 512


class BatteryRunBatch:
    """Row-stacked :class:`~repro.kernels.battery.BatteryRunArrays`.

    Hourly fields are ``(D, H)``; meter totals are ``(D,)``.  The
    ``charge_level`` plane materializes lazily from the kernel's
    hour-major scratch on first access: sweep evaluation never reads it,
    and each ``(H, D) -> (D, H)`` transpose copy is a full pass over the
    block's memory footprint.
    """

    __slots__ = (
        "grid_import", "surplus", "charged_mwh", "discharged_mwh",
        "_charge_t", "_charge",
    )

    def __init__(self, grid_import, surplus, charge_t, charged_mwh,
                 discharged_mwh):
        self.grid_import = grid_import
        self.surplus = surplus
        self.charged_mwh = charged_mwh
        self.discharged_mwh = discharged_mwh
        self._charge_t = charge_t
        self._charge = None

    @property
    def charge_level(self) -> np.ndarray:
        """The ``(D, H)`` end-of-hour stored-energy plane."""
        if self._charge is None:
            if self._charge_t is None:
                raise AttributeError(
                    "charge_level was not recorded (charge_plane=False)"
                )
            self._charge = _transpose_copy(self._charge_t)
            self._charge_t = None
        return self._charge


class ScheduleRunBatch(NamedTuple):
    """Row-stacked :func:`~repro.kernels.greedy.schedule_run` outcome."""

    shifted: np.ndarray
    moved_mwh: np.ndarray


class CombinedRunBatch:
    """Row-stacked :class:`~repro.kernels.combined.CombinedRunArrays`.

    Hourly fields are ``(D, H)``; meter totals are ``(D,)``.  The
    ``shifted_demand`` and ``charge_level`` planes materialize lazily from
    hour-major scratch on first access, exactly like
    :class:`BatteryRunBatch.charge_level` — the sweep path only reads
    ``grid_import``/``surplus`` and the meter columns.
    """

    __slots__ = (
        "grid_import", "surplus", "deferred_mwh", "late_mwh",
        "unserved_mwh", "charged_mwh", "discharged_mwh", "deferral_events",
        "_shifted_t", "_shifted", "_charge_t", "_charge",
    )

    def __init__(self, shifted_t, grid_import, surplus, charge_t,
                 deferred_mwh, late_mwh, unserved_mwh, charged_mwh,
                 discharged_mwh, deferral_events):
        self.grid_import = grid_import
        self.surplus = surplus
        self.deferred_mwh = deferred_mwh
        self.late_mwh = late_mwh
        self.unserved_mwh = unserved_mwh
        self.charged_mwh = charged_mwh
        self.discharged_mwh = discharged_mwh
        self.deferral_events = deferral_events
        self._shifted_t = shifted_t
        self._shifted = None
        self._charge_t = charge_t
        self._charge = None

    @property
    def shifted_demand(self) -> np.ndarray:
        """The ``(D, H)`` post-deferral served-load plane."""
        if self._shifted is None:
            self._shifted = _transpose_copy(self._shifted_t)
            self._shifted_t = None
        return self._shifted

    @property
    def charge_level(self) -> np.ndarray:
        """The ``(D, H)`` end-of-hour stored-energy plane."""
        if self._charge is None:
            if self._charge_t is None:
                raise AttributeError(
                    "charge_level was not recorded (charge_plane=False)"
                )
            self._charge = _transpose_copy(self._charge_t)
            self._charge_t = None
        return self._charge


def _rows(value, n_rows: int) -> np.ndarray:
    """A per-design parameter as a read-only ``(n_rows,)`` float view."""
    return np.broadcast_to(np.asarray(value, dtype=float), (n_rows,))


def _transpose_copy(src: np.ndarray) -> np.ndarray:
    """Blocked ``(H, D) -> (D, H)`` contiguous transpose copy.

    The hour loops write hour-major scratch (``out[h] = row_state`` is one
    contiguous store); results go back to the row-major layout callers
    slice per design.  Copying in square tiles keeps both sides of the
    transpose cache-resident even when the row axis outgrows the cache
    (merged multi-site blocks reach a few thousand rows).
    """
    n_hours, n_rows = src.shape
    out = np.empty((n_rows, n_hours))
    _transpose_into(out, src)
    return out


def _transpose_into(dst: np.ndarray, src: np.ndarray) -> None:
    """Tiled ``(H, D) -> (D, H)`` transpose into an existing buffer.

    Callers recycle a dead hour-major scratch plane (reshaped row-major)
    as ``dst``: its pages are already faulted in, which roughly halves
    the cost of materializing an output plane versus a fresh allocation.
    """
    n_hours, n_rows = src.shape
    for r0 in range(0, n_rows, _TRANSPOSE_BLOCK):
        r1 = r0 + _TRANSPOSE_BLOCK
        for h0 in range(0, n_hours, _TRANSPOSE_BLOCK):
            h1 = h0 + _TRANSPOSE_BLOCK
            dst[r0:r1, h0:h1] = src[h0:h1, r0:r1].T


def _battery_segments(n_rows: int, seeds) -> list:
    """Split the row axis into ``(start, stop, seed_or_None)`` segments.

    ``seeds`` entries are ``(row_start, row_stop, seed)`` triples over
    disjoint contiguous row ranges; gaps between (and around) them become
    plain lockstep segments.  An empty/absent ``seeds`` yields the single
    whole-block lockstep segment.
    """
    if not seeds:
        return [(0, n_rows, None)]
    segments = []
    cursor = 0
    for start, stop, seed in sorted(seeds, key=lambda entry: entry[0]):
        if not 0 <= start < stop <= n_rows:
            raise ValueError(
                f"seed rows [{start}:{stop}) out of range for {n_rows} rows"
            )
        if start < cursor:
            raise ValueError(
                f"seed rows [{start}:{stop}) overlap a previous seed group"
            )
        if start > cursor:
            segments.append((cursor, start, None))
        segments.append((start, stop, seed))
        cursor = stop
    if cursor < n_rows:
        segments.append((cursor, n_rows, None))
    return segments


def _battery_lockstep_cols(
    n_hours, cols, gap_t, req_t, surplus_t, grid_t, charge_t,
    cap, floor, energy, maxc, maxd, eta_c, eta_d,
    charged, discharged, power, limit, scratch,
):
    """The plain lockstep hour loop over one contiguous column range.

    Lanes are independent (every op is elementwise), so running a column
    slice is bitwise identical to running it as part of the whole block.
    """
    for hour in range(n_hours):
        gap = gap_t[hour, cols]
        # Charge on surplus: the exact serial clamp chain.  Deficit lanes
        # fall through with power = max(min(gap, …), 0.0) = +0.0, making
        # every update below a bitwise no-op there.
        np.minimum(gap, maxc, out=power)
        np.subtract(cap, energy, out=limit)
        np.divide(limit, eta_c, out=limit)
        np.minimum(power, limit, out=power)
        np.maximum(power, 0.0, out=power)
        np.multiply(power, eta_c, out=scratch)
        np.add(energy, scratch, out=energy)
        np.add(charged, power, out=charged)
        np.subtract(gap, power, out=surplus_t[hour, cols])
        # Discharge on deficit: mirror image (surplus lanes clip to +0.0).
        req = req_t[hour, cols]
        np.minimum(req, maxd, out=power)
        np.subtract(energy, floor, out=limit)
        np.multiply(limit, eta_d, out=limit)
        np.minimum(power, limit, out=power)
        np.maximum(power, 0.0, out=power)
        np.divide(power, eta_d, out=scratch)
        np.subtract(energy, scratch, out=energy)
        np.add(discharged, power, out=discharged)
        np.subtract(req, power, out=grid_t[hour, cols])
        if charge_t is not None:
            charge_t[hour, cols] = energy


def _battery_seeded_cols(
    seed, cols, surplus_t, grid_t, charge_t,
    cap, floor, energy, maxc, maxd, eta_c, eta_d,
    charged, discharged, power, limit, scratch, rail,
):
    """The seeded hour loop for one row group sharing a (demand, supply) pair.

    The group's rows all see the seed's gap trace (a Python float per
    hour), so the surplus/deficit branch — and the post-hoc output masks
    the lockstep loop applies plane-wide — collapse to a branch on the
    scalar's sign, and the skipped half-chain's +0.0-power no-op updates
    (energy, meters) disappear entirely.  Whenever every row sits at a
    rail (exactly full on a non-deficit hour, exactly at the floor on a
    non-surplus hour), the serial seeded kernel's stretch argument holds
    for the whole group at once: power clips to an exact +0.0 in every
    lane until the stretch ends, so the outputs are committed from the
    seed's precomputed arrays in one broadcast copy.  Off-rail hours run
    the serial clamp chains with the scalar gap broadcast — the same
    IEEE operation per lane as the lockstep loop.
    """
    gap_list = seed.gap_list
    next_deficit = seed.next_deficit
    next_surplus = seed.next_surplus
    n_hours = seed.n_hours
    hour = 0
    while hour < n_hours:
        gap = gap_list[hour]
        if gap >= 0.0:
            np.equal(energy, cap, out=rail)
            if rail.all():
                # Pinned at full: every hour until the next deficit
                # charges exactly 0.0 MW and spills the whole gap.
                stop = int(next_deficit[hour])
                surplus_t[hour:stop, cols] = seed.surplus_if_full[hour:stop, None]
                grid_t[hour:stop, cols] = 0.0
                if charge_t is not None:
                    charge_t[hour:stop, cols] = energy
                hour = stop
                continue
            if gap > 0.0:
                np.minimum(gap, maxc, out=power)
                np.subtract(cap, energy, out=limit)
                np.divide(limit, eta_c, out=limit)
                np.minimum(power, limit, out=power)
                np.maximum(power, 0.0, out=power)
                np.multiply(power, eta_c, out=scratch)
                np.add(energy, scratch, out=energy)
                np.add(charged, power, out=charged)
                np.subtract(gap, power, out=surplus_t[hour, cols])
            else:
                surplus_t[hour, cols] = 0.0
            grid_t[hour, cols] = 0.0
        else:
            np.equal(energy, floor, out=rail)
            if rail.all():
                # Pinned at the DoD floor: every hour until the next
                # surplus discharges exactly 0.0 MW and imports the
                # whole deficit.
                stop = int(next_surplus[hour])
                grid_t[hour:stop, cols] = seed.import_if_empty[hour:stop, None]
                surplus_t[hour:stop, cols] = 0.0
                if charge_t is not None:
                    charge_t[hour:stop, cols] = energy
                hour = stop
                continue
            requested = -gap
            np.minimum(requested, maxd, out=power)
            np.subtract(energy, floor, out=limit)
            np.multiply(limit, eta_d, out=limit)
            np.minimum(power, limit, out=power)
            np.maximum(power, 0.0, out=power)
            np.divide(power, eta_d, out=scratch)
            np.subtract(energy, scratch, out=energy)
            np.add(discharged, power, out=discharged)
            np.subtract(requested, power, out=grid_t[hour, cols])
            surplus_t[hour, cols] = 0.0
        if charge_t is not None:
            charge_t[hour, cols] = energy
        hour += 1


def battery_run_batch(
    demand: np.ndarray,
    supply: np.ndarray,
    *,
    capacity_mwh,
    floor_mwh,
    max_charge_mw,
    max_discharge_mw,
    charge_efficiency,
    discharge_efficiency,
    initial_energy_mwh,
    charge_plane: bool = True,
    seeds=None,
) -> BatteryRunBatch:
    """:func:`~repro.kernels.battery.battery_run` over a design block.

    ``demand`` is the shared ``(H,)`` trace — or a ``(D, H)`` block giving
    each row its own trace, which lets one call span several sites;
    ``supply`` is ``(D, H)`` with one row per design; every keyword is a
    ``(D,)`` column (scalars broadcast).  Zero-capacity rows reproduce
    :func:`~repro.kernels.battery.renewables_only_run` bitwise without
    leaving the block.

    ``seeds`` is an optional sequence of ``(row_start, row_stop, seed)``
    triples over disjoint contiguous row ranges whose rows all carry the
    exact (demand, supply) pair the
    :class:`~repro.kernels.battery.BatterySeed` was built from (the
    caller's contract; groups come from the projection cache, so the
    rows *are* the seed's arrays).  Seeded groups run the group-level
    rail fast-forward (see the module docstring); rows outside every
    group — and every row of an unseeded call — run the plain lockstep
    loop.  Output is bitwise identical either way.

    Preconditions (the wrappers validate them): finite non-negative
    demand/supply, efficiencies in ``(0, 1]``, ``floor <= initial <=
    capacity`` per row, and no ``-0.0`` in the inputs.
    """
    n_rows, n_hours = supply.shape
    cap = _rows(capacity_mwh, n_rows)
    hasb = cap > 0.0
    # The serial kernel's zero-capacity short-circuit ignores the floor and
    # the initial energy entirely; pin those lanes to 0.0 so the lockstep
    # recurrence holds the rail (charge/discharge power clips to +0.0) and
    # charge_level reproduces the degenerate path's zeros.
    floor = np.where(hasb, _rows(floor_mwh, n_rows), 0.0)
    energy = np.where(hasb, _rows(initial_energy_mwh, n_rows), 0.0)
    maxc = _rows(max_charge_mw, n_rows)
    maxd = _rows(max_discharge_mw, n_rows)
    eta_c = _rows(charge_efficiency, n_rows)
    eta_d = _rows(discharge_efficiency, n_rows)

    segments = _battery_segments(n_rows, seeds)
    for _, _, seed in segments:
        if seed is not None and seed.n_hours != n_hours:
            raise ValueError(
                f"seed spans {seed.n_hours} hours, block spans {n_hours}"
            )

    # Row pre-pass, shared by every hour: the signed gap and its negation.
    # (Fresh allocations — never write through a view of the input block.)
    dem_cols = demand.T if demand.ndim == 2 else demand[:, None]
    gap_t = np.subtract(supply.T, dem_cols)
    req_t = np.negative(gap_t)

    surplus_t = np.empty((n_hours, n_rows))
    grid_t = np.empty((n_hours, n_rows))
    # Pure output; sweeps never read it, so they skip the plane entirely.
    charge_t = np.empty((n_hours, n_rows)) if charge_plane else None
    charged = np.zeros(n_rows)
    discharged = np.zeros(n_rows)
    power = np.empty(n_rows)
    limit = np.empty(n_rows)
    scratch = np.empty(n_rows)
    rail = np.empty(n_rows, dtype=bool)

    for start, stop, seed in segments:
        cols = slice(start, stop)
        if seed is None:
            _battery_lockstep_cols(
                n_hours, cols, gap_t, req_t, surplus_t, grid_t, charge_t,
                cap[cols], floor[cols], energy[cols], maxc[cols], maxd[cols],
                eta_c[cols], eta_d[cols], charged[cols], discharged[cols],
                power[cols], limit[cols], scratch[cols],
            )
        else:
            _battery_seeded_cols(
                seed, cols, surplus_t, grid_t, charge_t,
                cap[cols], floor[cols], energy[cols], maxc[cols], maxd[cols],
                eta_c[cols], eta_d[cols], charged[cols], discharged[cols],
                power[cols], limit[cols], scratch[cols], rail[cols],
            )

    # The serial loop only *writes* surplus on strict-surplus hours and
    # grid import on strict-deficit hours; everything else stays +0.0.
    # Masking on the hour-major planes (before transposing) spares a third
    # full-plane transpose of the gap.  Seeded segments wrote their
    # outputs pre-masked (the scalar gap decides the branch up front), so
    # only lockstep segments need the pass.
    for start, stop, seed in segments:
        if seed is None:
            cols = slice(start, stop)
            np.copyto(
                surplus_t[:, cols], 0.0, where=~(gap_t[:, cols] > 0.0)
            )
            np.copyto(grid_t[:, cols], 0.0, where=~(gap_t[:, cols] < 0.0))
    # req_t and gap_t are dead past this point; their pages host the
    # row-major outputs.
    grid_block = req_t.reshape(n_rows, n_hours)
    _transpose_into(grid_block, grid_t)
    surplus_block = gap_t.reshape(n_rows, n_hours)
    _transpose_into(surplus_block, surplus_t)
    return BatteryRunBatch(
        grid_block,
        surplus_block,
        charge_t,
        charged,
        discharged,
    )


def schedule_run_batch(
    demand: np.ndarray,
    supply: np.ndarray,
    intensity: np.ndarray,
    capacity_mw,
    ratio_profile: np.ndarray,
) -> ScheduleRunBatch:
    """:func:`~repro.kernels.greedy.schedule_run` over a design block.

    ``demand``/``intensity``/``ratio_profile`` are shared across rows
    (the sweep varies investment and capacity, not the site), ``supply``
    is ``(D, H)``, ``capacity_mw`` a ``(D,)`` column.

    The serial kernel walks each candidate day's (source hour, destination
    hour) pairs in a fixed greedy order that depends only on the shared
    intensity trace — so all ``D`` rows visit the *same* ``(src, dst)``
    sequence and the day loop runs in lockstep: one ``(D, n_days)``
    vector step per pair.  Rows that the serial loop would have abandoned
    (``break`` on a drained deficit or movable budget) keep a dead lane
    mask instead — a lane can only die within a source hour, never
    resurrect, so masking is equivalent to breaking — and masked lanes
    move an exact ``+0.0``, which updates state bitwise-identically to
    not touching it.
    """
    n_rows, n_hours = supply.shape
    cmw = _rows(capacity_mw, n_rows)
    shifted = np.tile(demand, (n_rows, 1))
    moved = np.zeros(n_rows)
    if float(ratio_profile.max()) <= 0.0:
        return ScheduleRunBatch(shifted, moved)

    n_days = n_hours // _HOURS_PER_DAY
    demand_days = demand.reshape(n_days, _HOURS_PER_DAY)
    supply_block = np.ascontiguousarray(supply)
    intensity_days = intensity.reshape(n_days, _HOURS_PER_DAY)
    movable_days = demand_days * ratio_profile

    # Union of the serial kernel's per-row candidate days.  A day outside
    # a row's own candidate set never produces a live lane (no deficit
    # above the epsilon, or nothing movable), so lockstepping the union is
    # value-identical; days outside the *union* are untouched by every row.
    movable_any = (movable_days > _MIN_MOVE_MW).any(axis=1)
    deficit_any = (
        (demand_days[None, :, :] - supply_block.reshape(n_rows, n_days, _HOURS_PER_DAY))
        > _MIN_MOVE_MW
    ).any(axis=2).any(axis=0)
    days = np.flatnonzero(movable_any & deficit_any)
    if days.size == 0:
        return ScheduleRunBatch(shifted, moved)

    source_orders = np.argsort(-intensity_days[days], axis=1, kind="stable")
    dest_orders = np.argsort(intensity_days[days], axis=1, kind="stable")
    src_intensity = np.take_along_axis(intensity_days[days], source_orders, axis=1)
    dst_intensity = np.take_along_axis(intensity_days[days], dest_orders, axis=1)
    # Flat hour offsets of each rank column: day * 24 + hour-of-day.
    day_base = days * _HOURS_PER_DAY
    src_offsets = day_base[None, :] + source_orders.T  # (24, n_sel)
    dst_offsets = day_base[None, :] + dest_orders.T

    moved_day = np.zeros((n_rows, days.size))
    movable = np.tile(movable_days[days].T.reshape(-1), (n_rows, 1)).reshape(
        n_rows, _HOURS_PER_DAY, days.size
    )
    # movable indexed [row, hour-of-day, selected day]; source rank i's
    # column is movable[:, source_orders[:, i], day] — regather per rank.

    amount = np.empty((n_rows, days.size))
    live = np.empty((n_rows, days.size), dtype=bool)
    flag = np.empty((n_rows, days.size), dtype=bool)
    room = np.empty((n_rows, days.size))
    cmw_col = np.ascontiguousarray(cmw)[:, None]
    # Supply never mutates; gather each destination rank's columns once
    # instead of once per (source, destination) pair.
    dst_supply = [supply_block[:, dst_offsets[j]] for j in range(_HOURS_PER_DAY)]

    for i in range(_HOURS_PER_DAY):
        src_off = src_offsets[i]
        src_supply = supply_block[:, src_off]
        src_demand = shifted[:, src_off]
        src_hours = source_orders[:, i]
        src_movable = movable[:, src_hours, np.arange(days.size)]
        intensity_i = src_intensity[:, i]
        for j in range(_HOURS_PER_DAY):
            allowed = dst_intensity[:, j] < intensity_i
            if not allowed.any():
                break  # destinations are sorted: every further one is dirtier
            dst_off = dst_offsets[j]
            np.subtract(src_demand, src_supply, out=amount)  # deficit
            np.greater(amount, _MIN_MOVE_MW, out=live)
            np.greater(src_movable, _MIN_MOVE_MW, out=flag)
            live &= flag
            live &= allowed[None, :]
            live &= (dest_orders[:, j] != src_hours)[None, :]
            if not live.any():
                continue
            dst_demand = shifted[:, dst_off]
            np.minimum(amount, src_movable, out=amount)
            np.subtract(dst_supply[j], dst_demand, out=room)
            np.minimum(amount, room, out=amount)
            np.subtract(cmw_col, dst_demand, out=room)
            np.minimum(amount, room, out=amount)
            np.greater(amount, _MIN_MOVE_MW, out=flag)
            live &= flag
            np.multiply(amount, live, out=amount)
            np.add(amount, 0.0, out=amount)  # -0.0 -> +0.0 in dead lanes
            np.subtract(src_demand, amount, out=src_demand)
            np.add(dst_demand, amount, out=dst_demand)
            shifted[:, dst_off] = dst_demand
            np.subtract(src_movable, amount, out=src_movable)
            np.add(moved_day, amount, out=moved_day)
        shifted[:, src_off] = src_demand
        movable[:, src_hours, np.arange(days.size)] = src_movable

    # Serial order: moved_day folds into the total day by day (ascending),
    # skipping zero days — adding their exact +0.0 is a bitwise no-op.
    for column in range(days.size):
        np.add(moved, moved_day[:, column], out=moved)
    return ScheduleRunBatch(shifted, moved)


def combined_run_batch(
    demand: np.ndarray,
    supply: np.ndarray,
    *,
    capacity_mwh,
    floor_mwh,
    max_charge_mw,
    max_discharge_mw,
    charge_efficiency: float,
    discharge_efficiency: float,
    initial_energy_mwh,
    capacity_mw,
    flexible_ratio,
    deadline_hours: int,
    charge_plane: bool = True,
) -> CombinedRunBatch:
    """One year of the combined heuristic for a ``(D, H)`` block of designs.

    Bitwise identical to mapping :func:`~repro.kernels.combined.combined_run`
    over the rows (including its ``flexible_ratio == 0`` delegations to the
    battery / renewables-only kernels).  The serial kernel's FIFO deque
    splits into two structures that vectorize across rows:

    * a **deadline ring** ``(deadline_hours + 1, D)`` for not-yet-due work —
      each hour defers into slot ``(hour + deadline) % ring``, and each
      hour drains slot ``hour % ring`` ("due now") before reusing it;
    * an **overdue matrix** — a circular ``(D, L)`` buffer with per-row
      ``head``/``count`` cursors that holds work past its deadline.  A
      due-now entry the capacity budget cannot finish spills its residual
      to the matrix tail, so matrix order is deadline order — exactly the
      serial queue's FIFO order.  Row-major layout keeps each design's
      entries contiguous: chronically backlogged rows can grow the queue
      into the thousands, and the hourly head-take/tail-spill traffic
      then stays on each row's warm cache lines instead of striding
      across the whole matrix.

    Step 1 (deadlines first) walks the matrix one head entry per round for
    all rows in lockstep, using the serial expressions (``min(amount,
    budget - executed)``; pop at ``take >= amount - eps``) — exact, with no
    magnitude caveat.  Every matrix take is late (its deadline has passed);
    the due-now take never is, so no deadline values are stored at all.

    Step 2 (surplus soak) only ever reaches the *ring* — if overdue work
    survived step 1, the capacity budget is exhausted and the soak gate
    fails.  That argument is exact up to re-rounding (``cmw - load``
    versus ``headroom - executed`` differ in the last ulp), so rows where
    the soak gate passes while overdue work remains fall back to a scalar
    replay of the serial walk; this triggers at most a-few-entries per
    occurrence and is vanishingly rare.  The ring soak itself walks the
    live slots in increasing-deadline order — the serial queue's FIFO
    order, since a deferral at hour ``h`` uniquely targets deadline ``h +
    deadline_hours`` — one slot per round for all rows in lockstep, with
    the same exact serial expressions as step 1.

    Masked-lane transparency throughout follows the module contract:
    multiply-by-bool produces ``+/-0.0`` in dead lanes, and every fold
    target is non-negative, so the unconditional updates are bitwise
    no-ops there.

    Scratch memory is five ``(H, D)`` hour-major planes plus the ring and
    matrix — about 360 MB at ``D = 512`` for a full year, the reason
    callers chunk sweeps by ``batch_size``.
    """
    n_rows, n_hours = supply.shape
    dl = int(deadline_hours)
    if dl < 1:
        raise ValueError("deadline_hours must be >= 1")

    cap = _rows(capacity_mwh, n_rows)
    hasb = cap > 0.0
    floor = np.where(hasb, _rows(floor_mwh, n_rows), 0.0)
    maxc = np.where(hasb, _rows(max_charge_mw, n_rows), 0.0)
    maxd = np.where(hasb, _rows(max_discharge_mw, n_rows), 0.0)
    eta_c = _rows(charge_efficiency, n_rows)
    eta_d = _rows(discharge_efficiency, n_rows)
    cmw = _rows(capacity_mw, n_rows)
    fr = _rows(flexible_ratio, n_rows)
    fr_zero = fr == 0.0  # repro-lint: disable=RL005 — exact degenerate-case guard
    init = _rows(initial_energy_mwh, n_rows)
    any_battery = bool(hasb.any())

    # Hour-major planes: one contiguous (D,) row per hour on both sides.
    # A (D, H) demand block (rows from different sites) transposes the same
    # way; the hourly demand operand is then a (D,) row instead of a scalar,
    # which every ufunc below broadcasts identically per lane.
    if demand.ndim == 2:
        shifted_t = np.empty((n_hours, n_rows))
        for start in range(0, n_hours, _TRANSPOSE_BLOCK):
            stop = start + _TRANSPOSE_BLOCK
            shifted_t[start:stop] = demand[:, start:stop].T
        demand_hours = list(shifted_t.copy())
    else:
        shifted_t = np.broadcast_to(demand[:, None], (n_hours, n_rows)).copy()
        demand_hours = demand.tolist()
    sup_t = np.empty((n_hours, n_rows))
    for start in range(0, n_hours, _TRANSPOSE_BLOCK):
        stop = start + _TRANSPOSE_BLOCK
        sup_t[start:stop] = supply[:, start:stop].T
    grid_t = np.zeros((n_hours, n_rows))
    surplus_t = np.zeros((n_hours, n_rows))
    # Pure output; sweeps never read it, so they skip the plane entirely.
    charge_t = np.empty((n_hours, n_rows)) if charge_plane else None

    # Rows delegating to renewables_only_run report an all-zero charge level.
    energy = np.where(fr_zero & ~hasb, 0.0, init)
    charged = np.zeros(n_rows)
    discharged = np.zeros(n_rows)
    queued_total = np.zeros(n_rows)
    deferred_total = np.zeros(n_rows)
    late = np.zeros(n_rows)
    events = np.zeros(n_rows, dtype=np.int64)

    # Deadline ring + defer-time occupancy counts: occ_cnt[slot] is the
    # number of rows that deferred into the slot (set absolutely at defer,
    # zeroed at drain; soak pops do NOT decrement, so the counts are
    # sloppy-high in between).  That is enough to skip never-filled slots
    # and idle hours with plain python int tests, and it keeps the soak
    # walk's per-round cost free of any bookkeeping reductions — emptied
    # lanes hold +0.0, which is bitwise-transparent through the serial
    # take/pop expressions.
    ring_n = dl + 1
    ring_amt = np.zeros((ring_n, n_rows))
    occ_cnt = [0] * ring_n
    ring_rows = 0

    # Overdue matrix: circular (D, L), per-row head/count cursors.
    L = 64
    Lm1 = L - 1
    Q = np.zeros((n_rows, L))
    Qflat = Q.ravel()
    head = np.zeros(n_rows, dtype=np.int64)
    ocount = np.zeros(n_rows, dtype=np.int64)
    rows_idx = np.arange(n_rows, dtype=np.int64)
    rowbase = rows_idx * L
    overdue_any = False

    # (D,) scratch
    headroom = np.empty(n_rows)
    gap = np.empty(n_rows)
    ex = np.empty(n_rows)
    rem = np.empty(n_rows)
    take = np.empty(n_rows)
    a0 = np.empty(n_rows)
    resid = np.empty(n_rows)
    power = np.empty(n_rows)
    limit = np.empty(n_rows)
    scratch = np.empty(n_rows)
    deficit = np.empty(n_rows)
    deferred = np.empty(n_rows)
    budget = np.empty(n_rows)
    g1 = np.empty(n_rows, dtype=bool)
    act = np.empty(n_rows, dtype=bool)
    pop = np.empty(n_rows, dtype=bool)
    spill = np.empty(n_rows, dtype=bool)
    sup = np.empty(n_rows, dtype=bool)
    defer_mask = np.empty(n_rows, dtype=bool)
    soak_mask = np.empty(n_rows, dtype=bool)
    flag = np.empty(n_rows, dtype=bool)
    neg_mask = np.empty(n_rows, dtype=bool)
    i64a = np.empty(n_rows, dtype=np.int64)
    for hour in range(n_hours):
        demand_h = demand_hours[hour]
        load = shifted_t[hour]
        slot_due = hour % ring_n
        due_flag = occ_cnt[slot_due] > 0
        any_spill_now = False

        # ---- 1. Deadlines first: run_queued(headroom, hour, True).
        # Matrix head entries (all strictly overdue -> late), then the
        # due-now ring entry (never late), under one budget fold.
        if due_flag or overdue_any:
            np.subtract(cmw, demand_h, out=headroom)
            np.greater(headroom, _EPSILON_MWH, out=g1)
            np.greater(queued_total, _EPSILON_MWH, out=flag)
            g1 &= flag
            # Fold the hour gate into the budget itself: gated-off lanes
            # get a +/-0.0 budget, so their ``rem > eps`` test can never
            # pass and the per-round ``&= g1`` ops disappear.
            np.multiply(headroom, g1, out=headroom)
            ex.fill(0.0)
            if overdue_any:
                # Only rows with overdue entries AND a live (post-gate)
                # budget can take anything; every other row's lanes are
                # bitwise no-ops all the way down (a +/-0.0 take changes
                # nothing it folds into), so the walk runs compressed to
                # the candidates — typically a sixth of a merged block.
                np.greater(ocount, 0, out=flag)
                np.greater(headroom, _EPSILON_MWH, out=act)
                flag &= act
                cand = np.flatnonzero(flag)
                if cand.size:
                    nc = cand.size
                    hr_c = np.take(headroom, cand)
                    hd_c = head[cand]
                    oc_c = ocount[cand]
                    qt_c = np.take(queued_total, cand)
                    lt_c = np.take(late, cand)
                    base_c = cand * L
                    ex_c = np.zeros(nc)
                    rem_c, take_c, resid_c, a0_c = (
                        rem[:nc], take[:nc], resid[:nc], a0[:nc])
                    act_c, pop_c, oflag_c = act[:nc], pop[:nc], flag[:nc]
                    i_c = i64a[:nc]
                    while True:
                        np.subtract(hr_c, ex_c, out=rem_c)
                        np.greater(rem_c, _EPSILON_MWH, out=act_c)
                        np.greater(oc_c, 0, out=oflag_c)
                        act_c &= oflag_c
                        if not act_c.any():
                            break
                        np.bitwise_and(hd_c, Lm1, out=i_c)
                        np.add(i_c, base_c, out=i_c)
                        Qflat.take(i_c, None, a0_c)
                        np.minimum(a0_c, rem_c, out=take_c)
                        np.multiply(take_c, act_c, out=take_c)
                        np.add(ex_c, take_c, out=ex_c)
                        np.subtract(qt_c, take_c, out=qt_c)
                        np.add(lt_c, take_c, out=lt_c)
                        np.subtract(a0_c, _EPSILON_MWH, out=resid_c)
                        np.greater_equal(take_c, resid_c, out=pop_c)
                        pop_c &= act_c
                        np.subtract(a0_c, take_c, out=resid_c)
                        # Inactive lanes computed resid == a0 bitwise
                        # (take is +/-0.0 there and the matrix never
                        # stores -0.0), so only the draining lanes need
                        # their entry scattered back.
                        Qflat[i_c[act_c]] = resid_c[act_c]
                        np.add(hd_c, pop_c, out=hd_c)
                        np.subtract(oc_c, pop_c, out=oc_c)
                    head[cand] = hd_c
                    ocount[cand] = oc_c
                    queued_total[cand] = qt_c
                    late[cand] = lt_c
                    ex[cand] = ex_c
                overdue_any = bool(ocount.any())
            if due_flag:
                due_amt = ring_amt[slot_due]
                np.subtract(headroom, ex, out=rem)
                # No ``due_amt > 0`` gate: empty lanes take +0.0, their
                # spurious pop never spills (spill re-checks ``> 0``), and
                # the slot is zeroed below regardless.
                np.greater(rem, _EPSILON_MWH, out=act)
                np.minimum(due_amt, rem, out=take)
                np.multiply(take, act, out=take)
                np.add(ex, take, out=ex)
                np.subtract(queued_total, take, out=queued_total)
                np.subtract(due_amt, _EPSILON_MWH, out=resid)
                np.greater_equal(take, resid, out=pop)
                pop &= act
                np.greater(due_amt, 0.0, out=spill)
                np.logical_not(pop, out=flag)
                spill &= flag
                if spill.any():
                    # Unfinished due work migrates to the matrix tail: its
                    # slot is about to be reused, and its deadline (== hour)
                    # sorts after every matrix entry, preserving FIFO order.
                    any_spill_now = True
                    np.subtract(due_amt, take, out=resid)
                    np.add(head, ocount, out=i64a)
                    np.bitwise_and(i64a, Lm1, out=i64a)
                    np.add(i64a, rowbase, out=i64a)
                    # Non-spilling rows would write a dead tail position
                    # (beyond their count, never read) — skip them.
                    Qflat[i64a[spill]] = resid[spill]
                    np.add(ocount, spill, out=ocount)
                    overdue_any = True
                    if int(ocount.max()) >= L:
                        ks = np.arange(L, dtype=np.int64)[None, :]
                        old = np.bitwise_and(head[:, None] + ks, Lm1)
                        old += rowbase[:, None]
                        L *= 2
                        Lm1 = L - 1
                        grown = np.zeros((n_rows, L))
                        grown[:, : L // 2] = Qflat[old]
                        Q = grown
                        Qflat = Q.ravel()
                        rowbase = rows_idx * L
                        head.fill(0)
                due_amt.fill(0.0)
                ring_rows -= occ_cnt[slot_due]
                occ_cnt[slot_due] = 0
            np.add(load, ex, out=load)

        # ---- Serial branch decision, with this hour's true load.
        np.subtract(sup_t[hour], load, out=gap)
        np.greater(gap, 0.0, out=sup)
        any_sup = bool(sup.any())
        all_sup = any_sup and bool(sup.all())

        # ---- 2. Surplus soak: run_queued(min(gap, headroom), hour, False).
        if any_sup and (ring_rows or overdue_any):
            np.subtract(cmw, load, out=headroom)
            np.minimum(gap, headroom, out=budget)
            np.greater(budget, _EPSILON_MWH, out=soak_mask)
            np.greater(queued_total, _EPSILON_MWH, out=flag)
            soak_mask &= flag
            if overdue_any:
                np.greater(ocount, 0, out=act)
                act &= soak_mask
                if act.any():
                    _soak_replay_rows(
                        np.flatnonzero(act), soak_mask, budget, queued_total,
                        late, load, gap, Qflat, head, ocount, Lm1, L,
                        ring_amt, ring_n, hour, dl,
                        spill if any_spill_now else None,
                    )
                    overdue_any = bool(ocount.any())
            if ring_rows and bool(soak_mask.any()):
                # Ring entries in increasing-deadline order = the serial
                # queue's FIFO order; one slot per round, all rows in
                # lockstep, with the serial loop's exact expressions
                # (``take = min(amount, budget - executed)``, pop at
                # ``take >= amount - eps``).  Each slot holds at most one
                # entry per row (a deferral at hour h uniquely targets
                # deadline h + dl), so a round IS a queue entry.  The walk
                # runs *compressed* to the soak-gated rows: every other
                # row would flow through the take/pop expressions as a
                # bitwise no-op (a +/-0.0 budget can never pass the
                # ``rem > eps`` gate), and soak rows are sparse — a few
                # percent of a merged block on a typical hour — so each
                # round's vector ops shrink from D lanes to the handful
                # that can actually take work.
                sidx = np.flatnonzero(soak_mask)
                slots = []
                for ahead in range(1, dl):
                    slot = (hour + ahead) % ring_n
                    if occ_cnt[slot]:
                        slots.append(slot)
                if slots:
                    m = len(slots)
                    bud_c = np.take(budget, sidx)
                    qt_c = np.take(queued_total, sidx)
                    qt0 = qt_c.copy()
                    cell = np.ix_(slots, sidx)
                    entries = ring_amt[cell]
                    # The serial walk takes entries whole until the budget
                    # runs dry, so its running ``executed`` along that
                    # prefix IS the left-fold prefix sum of the amounts —
                    # one cumsum replaces the per-slot round loop, and the
                    # per-entry ``rem > eps`` gate / ``min(amount, rem)``
                    # take / ``take >= amount - eps`` pop evaluate on the
                    # whole (slot x row) sheet at once.  Past a partial
                    # take the sheet's rem goes negative and gates every
                    # later slot off, exactly like the serial loop whose
                    # rem sticks at ~0; the one (vanishing) divergence is
                    # a partial whose serial residual still clears the
                    # epsilon gate, replayed exactly below.
                    prefix = np.cumsum(entries, axis=0)
                    rem2 = np.empty_like(entries)
                    rem2[0] = bud_c
                    np.subtract(bud_c, prefix[:-1], out=rem2[1:])
                    gate2 = rem2 > _EPSILON_MWH
                    take2 = np.minimum(entries, rem2)
                    np.multiply(take2, gate2, out=take2)
                    resid2 = np.subtract(entries, _EPSILON_MWH)
                    pop2 = np.greater_equal(take2, resid2)
                    pop2 &= gate2
                    left2 = np.subtract(entries, take2)
                    np.logical_not(pop2, out=pop2)
                    np.multiply(left2, pop2, out=left2)
                    # ``executed`` and the queue meter are serial
                    # per-take folds (a lump-sum add would round
                    # differently); m is the occupied-slot count, so this
                    # loop is a handful of tiny row ops.
                    ex_c = ex[:sidx.size]
                    ex_c.fill(0.0)
                    for k in range(m):
                        take_k = take2[k]
                        np.add(ex_c, take_k, out=ex_c)
                        np.subtract(qt_c, take_k, out=qt_c)
                    partial2 = np.less(take2, entries)
                    partial2 &= gate2
                    rem_c = rem[:sidx.size]
                    np.subtract(bud_c, ex_c, out=rem_c)
                    hazard = np.greater(rem_c, _EPSILON_MWH)
                    hazard &= partial2.any(axis=0)
                    if hazard.any():
                        for j in np.flatnonzero(hazard):
                            ex_c[j], qt_c[j] = _soak_exact_column(
                                entries[:, j], left2[:, j],
                                float(bud_c[j]), float(qt0[j]),
                            )
                    ring_amt[cell] = left2
                    queued_total[sidx] = qt_c
                    # No takes leave ex at +0.0 and every update below a
                    # bitwise no-op (load and the soak lanes' gap carry no
                    # -0.0), so the tail runs unconditionally.
                    load[sidx] += ex_c
                    g_c = np.take(gap, sidx)
                    np.subtract(g_c, ex_c, out=g_c)
                    neg_c = pop[:sidx.size]
                    np.less(g_c, 0.0, out=neg_c)
                    np.copyto(g_c, 0.0, where=neg_c)
                    gap[sidx] = g_c

        # ---- 3. Surplus: battery charge chain (maskless; dead lanes
        # resolve to +0.0 power through the serial clamp order).
        if any_sup:
            np.minimum(gap, maxc, out=power)
            np.subtract(cap, energy, out=limit)
            np.divide(limit, eta_c, out=limit)
            np.minimum(power, limit, out=power)
            np.maximum(power, 0.0, out=power)
            np.multiply(power, eta_c, out=scratch)
            np.add(energy, scratch, out=energy)
            np.add(charged, power, out=charged)
            np.subtract(gap, power, out=scratch)
            np.maximum(scratch, 0.0, out=surplus_t[hour])

        # ---- 4. Deficit: battery, then deferral, then the grid.
        if not all_sup:
            np.negative(gap, out=deficit)
            if any_battery:
                np.minimum(deficit, maxd, out=power)
                np.subtract(energy, floor, out=limit)
                np.multiply(limit, eta_d, out=limit)
                np.minimum(power, limit, out=power)
                np.maximum(power, 0.0, out=power)
                np.divide(power, eta_d, out=scratch)
                np.subtract(energy, scratch, out=energy)
                np.add(discharged, power, out=discharged)
                np.subtract(deficit, power, out=deficit)
            np.multiply(fr, demand_h, out=deferred)
            np.minimum(deficit, deferred, out=deferred)
            np.greater(deferred, _EPSILON_MWH, out=defer_mask)
            if defer_mask.any():
                np.multiply(deferred, defer_mask, out=scratch)
                np.add(scratch, 0.0, out=scratch)
                np.subtract(load, scratch, out=load)
                np.subtract(deficit, scratch, out=deficit)
                np.add(queued_total, scratch, out=queued_total)
                np.add(deferred_total, scratch, out=deferred_total)
                np.add(events, defer_mask, out=events)
                # This slot was the due slot last hour, so it is empty now
                # (drained and zeroed); the copyto installs this hour's
                # deferrals as its only entries.
                slot = (hour + dl) % ring_n
                np.copyto(ring_amt[slot], scratch)
                ndefer = int(np.count_nonzero(defer_mask))
                occ_cnt[slot] = ndefer
                ring_rows += ndefer
            np.logical_not(sup, out=flag)
            np.copyto(grid_t[hour], deficit, where=flag)

        if charge_plane:
            charge_t[hour] = energy

    # sup_t is dead after the loop and grid_t after its own transpose;
    # recycle their faulted-in pages as the row-major outputs.
    grid = sup_t.reshape(n_rows, n_hours)
    _transpose_into(grid, grid_t)
    surplus = grid_t.reshape(n_rows, n_hours)
    _transpose_into(surplus, surplus_t)
    if fr_zero.any():
        # The serial kernel's flexible_ratio == 0 delegations write their
        # grid column with np.maximum (never -0.0); the combined loop's
        # python max keeps -0.0.  Normalize those rows to the delegate.
        rows_z = np.flatnonzero(fr_zero)
        grid[rows_z] = np.add(grid[rows_z], 0.0)
    return CombinedRunBatch(
        shifted_t, grid, surplus, charge_t,
        deferred_total, late, queued_total, charged, discharged, events,
    )


def _soak_replay_rows(
    rows, soak_mask, budget, queued_total, late, load, gap,
    Qflat, head, ocount, Lm1, L, ring_amt, ring_n, hour, dl, spill,
):
    """Serial soak replay for rows whose budget survived step 1's drain.

    Overdue work outlives step 1 only when the hour's capacity budget is
    exhausted, and then the soak budget fails its epsilon gate — except
    when ``cmw - load`` re-rounds an ulp above ``headroom - executed``.
    For those (vanishingly rare) rows, replay the serial run_queued walk
    exactly: matrix entries head-first, then live ring slots in deadline
    order.  Every matrix take is late unless it is the entry spilled this
    very hour (``spill`` is step 1's spill mask, or None if none spilled),
    which still carries deadline == hour.
    """
    for row in rows.tolist():
        soak_mask[row] = False
        budget_row = float(budget[row])
        total_row = float(queued_total[row])
        late_row = float(late[row])
        exec_row = 0.0
        hd = int(head[row])
        oc = int(ocount[row])
        while oc and budget_row - exec_row > _EPSILON_MWH:
            slot = row * L + (hd & Lm1)
            amount = float(Qflat[slot])
            remaining = budget_row - exec_row
            take = amount if amount <= remaining else remaining
            exec_row += take
            total_row -= take
            if not (oc == 1 and spill is not None and spill[row]):
                late_row += take
            if take >= amount - _EPSILON_MWH:
                hd += 1
                oc -= 1
            else:
                Qflat[slot] = amount - take
        head[row] = hd
        ocount[row] = oc
        if oc == 0:
            for ahead in range(1, dl):
                if budget_row - exec_row <= _EPSILON_MWH:
                    break
                slot = (hour + ahead) % ring_n
                amount = float(ring_amt[slot, row])
                if amount > 0.0:
                    remaining = budget_row - exec_row
                    take = amount if amount <= remaining else remaining
                    exec_row += take
                    total_row -= take
                    if take >= amount - _EPSILON_MWH:
                        ring_amt[slot, row] = 0.0
                    else:
                        ring_amt[slot, row] = amount - take
        queued_total[row] = total_row
        late[row] = late_row
        load_row = float(load[row]) + exec_row
        load[row] = load_row
        gap_row = float(gap[row]) - exec_row
        gap[row] = gap_row if gap_row >= 0.0 else 0.0


def _soak_exact_column(entries_col, left_col, budget, queued):
    """Serial replay of one row's ring walk (the post-partial hazard).

    The cumsum sheet gates every slot after a partial take off a negative
    rem, while the serial loop's rem is ``budget - executed`` — which can,
    at epsilon scale, re-round just above the gate and take more.  Replay
    the row with the serial kernel's exact scalar arithmetic, overwriting
    the sheet's leftover column, and return the serial fold results.
    """
    executed = 0.0
    for k in range(entries_col.size):
        amount = float(entries_col[k])
        if amount == 0.0:  # repro-lint: disable=RL005 — exact degenerate-case guard; kernels import nothing
            continue
        remaining = budget - executed
        if remaining <= _EPSILON_MWH:
            left_col[k] = amount
            continue
        take = amount if amount <= remaining else remaining
        executed += take
        queued -= take
        if take >= amount - _EPSILON_MWH:
            left_col[k] = 0.0
        else:
            left_col[k] = amount - take
    return executed, queued
