"""Array-native kernel for the greedy carbon-aware scheduler (§4.3).

The per-day greedy algorithm itself is sequential (each move changes the
deficits and headroom later moves see), but everything around it
vectorizes:

* the hour orderings — deficit sources worst-carbon-first, destinations
  best-first — are stable argsorts computed for **all days at once** on the
  ``(n_days, 24)`` intensity matrix, replacing two ``sorted()`` calls with
  Python key lambdas per day;
* the movable-power matrix is one elementwise product;
* days that provably move nothing (no hour with a deficit above the move
  epsilon, or nothing movable) are skipped without entering the day loop —
  for a year with a zero flexible ratio the kernel is a single copy.

Within a candidate day the greedy loop runs on plain-float Python lists in
the exact operation order of the original ``_schedule_one_day``, so results
are bitwise identical.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Ignore moves below this size (MW) to keep the greedy loop finite in the
#: presence of floating-point residue.  Mirrors ``repro.scheduling.greedy``.
_MIN_MOVE_MW = 1e-9

_HOURS_PER_DAY = 24


def schedule_run(
    demand: np.ndarray,
    supply: np.ndarray,
    intensity: np.ndarray,
    capacity_mw: float,
    ratio_profile: np.ndarray,
) -> Tuple[np.ndarray, float]:
    """Greedy CAS over a year of hourly arrays; ``(shifted, moved_mwh)``.

    ``ratio_profile`` is the normalized 24-value hour-of-day FWR profile.
    The input arrays are read-only; the shifted demand is a fresh array.
    """
    shifted = demand.copy()
    if float(ratio_profile.max()) <= 0.0:
        return shifted, 0.0

    n_days = shifted.shape[0] // _HOURS_PER_DAY
    demand_days = shifted.reshape(n_days, _HOURS_PER_DAY)
    supply_days = supply.reshape(n_days, _HOURS_PER_DAY)
    intensity_days = intensity.reshape(n_days, _HOURS_PER_DAY)

    # Moves only happen within a day, so movable power per hour is fixed by
    # the original demand — one product for the whole year.
    movable_days = demand_days * ratio_profile

    candidates = np.flatnonzero(
        ((demand_days - supply_days) > _MIN_MOVE_MW).any(axis=1)
        & (movable_days > _MIN_MOVE_MW).any(axis=1)
    )
    if candidates.size == 0:
        return shifted, 0.0

    # Stable argsort matches Python's stable sorted(): ties keep hour order.
    source_orders = np.argsort(-intensity_days, axis=1, kind="stable")
    dest_orders = np.argsort(intensity_days, axis=1, kind="stable")

    moved_total = 0.0
    for day in candidates.tolist():
        day_demand = demand_days[day].tolist()
        day_supply = supply_days[day].tolist()
        day_intensity = intensity_days[day].tolist()
        movable = movable_days[day].tolist()
        dest_order = dest_orders[day].tolist()
        moved_day = 0.0

        for src in source_orders[day].tolist():
            deficit = day_demand[src] - day_supply[src]
            if deficit <= _MIN_MOVE_MW or movable[src] <= _MIN_MOVE_MW:
                continue
            intensity_src = day_intensity[src]
            for dst in dest_order:
                if dst == src:
                    continue
                if day_intensity[dst] >= intensity_src:
                    break  # every further destination is at least as dirty
                deficit = day_demand[src] - day_supply[src]
                if deficit <= _MIN_MOVE_MW or movable[src] <= _MIN_MOVE_MW:
                    break
                surplus = day_supply[dst] - day_demand[dst]
                headroom = capacity_mw - day_demand[dst]
                amount = min(deficit, movable[src], surplus, headroom)
                if amount <= _MIN_MOVE_MW:
                    continue
                day_demand[src] -= amount
                day_demand[dst] += amount
                movable[src] -= amount
                moved_day += amount

        if moved_day > 0.0:
            demand_days[day] = day_demand
            moved_total += moved_day
    return shifted, moved_total
