"""Array-native kernel for the battery-first combined heuristic (§5.2).

The forward pass over the year is sequential (battery state plus a FIFO
queue of deferred work), so the general case stays a Python loop — with the
battery's C/L/C dynamics inlined on local floats (replicating the exact
IEEE operation order of ``Battery.charge``/``Battery.discharge``) instead
of per-hour method calls.  Two degenerate configurations short-circuit:

* no battery and no flexible workloads — fully vectorized (the
  renewables-only arithmetic);
* flexible ratio zero with a battery — the combined heuristic reduces
  exactly to the greedy battery policy, so it delegates to
  :func:`repro.kernels.battery.battery_run` (bitwise identical: the
  delivered/absorbed power can never exceed the hourly gap, so the
  combined loop's clamps are identities).
"""

from __future__ import annotations

from collections import deque
from typing import NamedTuple

import numpy as np

from .battery import battery_run, renewables_only_run

_EPSILON_MWH = 1e-9


class CombinedRunArrays(NamedTuple):
    """Raw-array outcome of one combined run (see ``CombinedResult``)."""

    shifted_demand: np.ndarray
    grid_import: np.ndarray
    surplus: np.ndarray
    charge_level: np.ndarray
    deferred_mwh: float
    late_mwh: float
    unserved_mwh: float
    charged_mwh: float
    discharged_mwh: float
    deferral_events: int


def combined_run(
    demand: np.ndarray,
    supply: np.ndarray,
    *,
    capacity_mwh: float,
    floor_mwh: float,
    max_charge_mw: float,
    max_discharge_mw: float,
    charge_efficiency: float,
    discharge_efficiency: float,
    initial_energy_mwh: float,
    capacity_mw: float,
    flexible_ratio: float,
    deadline_hours: int,
) -> CombinedRunArrays:
    """One year of the battery-first combined heuristic on raw arrays."""
    n_hours = demand.shape[0]

    if flexible_ratio == 0.0:  # repro-lint: disable=RL005 — exact degenerate-case guard; kernels import nothing
        if capacity_mwh == 0.0:  # repro-lint: disable=RL005 — exact degenerate-case guard; kernels import nothing
            grid_import, surplus = renewables_only_run(demand, supply)
            return CombinedRunArrays(
                demand.copy(), grid_import, surplus, np.zeros(n_hours),
                0.0, 0.0, 0.0, 0.0, 0.0, 0,
            )
        battery = battery_run(
            demand,
            supply,
            capacity_mwh=capacity_mwh,
            floor_mwh=floor_mwh,
            max_charge_mw=max_charge_mw,
            max_discharge_mw=max_discharge_mw,
            charge_efficiency=charge_efficiency,
            discharge_efficiency=discharge_efficiency,
            initial_energy_mwh=initial_energy_mwh,
        )
        return CombinedRunArrays(
            demand.copy(),
            battery.grid_import,
            battery.surplus,
            battery.charge_level,
            0.0, 0.0, 0.0,
            battery.charged_mwh,
            battery.discharged_mwh,
            0,
        )

    demand_list = demand.tolist()
    supply_list = supply.tolist()
    shifted = [0.0] * n_hours
    grid_import = [0.0] * n_hours
    surplus_out = [0.0] * n_hours
    charge_level = [0.0] * n_hours

    energy = initial_energy_mwh
    charged = 0.0
    discharged = 0.0
    eta_charge = charge_efficiency
    eta_discharge = discharge_efficiency
    has_battery = capacity_mwh > 0.0

    queue = deque()  # (deadline_hour, mwh) in submission order
    queued_total = 0.0
    deferred_total = 0.0
    late_total = 0.0
    deferral_events = 0

    def run_queued(budget_mwh: float, now: int, overdue_only: bool) -> float:
        """Execute queued work up to ``budget_mwh``; return MWh executed."""
        nonlocal queued_total, late_total
        executed = 0.0
        while queue and budget_mwh - executed > _EPSILON_MWH:
            deadline, amount = queue[0]
            if overdue_only and deadline > now:
                break
            take = min(amount, budget_mwh - executed)
            executed += take
            queued_total -= take
            if deadline < now:
                late_total += take
            if take >= amount - _EPSILON_MWH:
                queue.popleft()
            else:
                queue[0] = (deadline, amount - take)
        return executed

    for hour in range(n_hours):
        load = demand_list[hour]

        # 1. Deadlines first: overdue work must run now, capacity permitting.
        headroom = capacity_mw - load
        if headroom > _EPSILON_MWH and queued_total > _EPSILON_MWH:
            load += run_queued(headroom, hour, True)

        gap = supply_list[hour] - load
        if gap > 0.0:
            # 2. Surplus: deferred work soaks it up before the battery does.
            headroom = capacity_mw - load
            budget = min(gap, headroom)
            if budget > _EPSILON_MWH and queued_total > _EPSILON_MWH:
                ran = run_queued(budget, hour, False)
                load += ran
                gap = max(gap - ran, 0.0)
            if has_battery and gap > 0.0:
                power = gap if gap < max_charge_mw else max_charge_mw
                limit = (capacity_mwh - energy) / eta_charge
                if power > limit:
                    power = limit
                if power < 0.0:
                    power = 0.0
                energy += power * eta_charge
                charged += power
                surplus_out[hour] = gap - power
            else:
                surplus_out[hour] = gap
        else:
            # 3. Deficit: battery first, then deferral, then the grid.
            deficit = -gap
            if has_battery and deficit > 0.0:
                power = deficit if deficit < max_discharge_mw else max_discharge_mw
                limit = (energy - floor_mwh) * eta_discharge
                if power > limit:
                    power = limit
                if power < 0.0:
                    power = 0.0
                energy -= power / eta_discharge
                discharged += power
                deficit -= power
            if deficit > _EPSILON_MWH:
                deferrable = flexible_ratio * demand_list[hour]
                deferred = min(deficit, deferrable)
                if deferred > _EPSILON_MWH:
                    load -= deferred
                    deficit -= deferred
                    queue.append((hour + deadline_hours, deferred))
                    queued_total += deferred
                    deferred_total += deferred
                    deferral_events += 1
            grid_import[hour] = max(deficit, 0.0)

        shifted[hour] = load
        charge_level[hour] = energy

    return CombinedRunArrays(
        np.asarray(shifted),
        np.asarray(grid_import),
        np.asarray(surplus_out),
        np.asarray(charge_level),
        deferred_total,
        late_total,
        queued_total,
        charged,
        discharged,
        deferral_events,
    )
