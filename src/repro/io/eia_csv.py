"""EIA Hourly Grid Monitor CSV interchange.

The real Carbon Explorer consumes CSV exports from the EIA Hourly Grid
Monitor ("Net generation by energy source").  This module speaks that
dialect in both directions so users with real exports can swap out the
synthetic substrate:

* :func:`write_grid_csv` serializes a :class:`~repro.grid.GridDataset` as an
  EIA-style wide CSV — one row per hour (UTC timestamp), one column per
  fuel, plus demand.
* :func:`read_grid_csv` parses such a file back into a ``GridDataset``
  (attaching it to a registered balancing authority for metadata).

The format is deliberately strict: a full year of hourly rows in order,
numeric non-negative megawatt values, and recognized fuel column names.
Malformed files fail loudly with row/column context rather than producing a
silently misaligned year of data.
"""

from __future__ import annotations

import csv
import datetime as _dt
import io
import pathlib
from typing import Dict, List, Optional, TextIO, Union

import numpy as np

from ..grid.authorities import get_authority
from ..grid.dataset import GridDataset
from ..grid.sources import EnergySource
from ..timeseries import HourlySeries, YearCalendar

#: Column header used for the timestamp, matching EIA exports.
TIMESTAMP_COLUMN = "UTC time"

#: Column header for system demand.
DEMAND_COLUMN = "Demand (MW)"

#: Column header for curtailed renewable energy (an extension column; absent
#: in real EIA exports and treated as zero when missing).
CURTAILED_COLUMN = "Curtailed (MW)"

#: Mapping between our fuel enum and the EIA-style column names.
FUEL_COLUMNS: Dict[EnergySource, str] = {
    EnergySource.WIND: "Net generation from wind (MW)",
    EnergySource.SOLAR: "Net generation from solar (MW)",
    EnergySource.WATER: "Net generation from hydro (MW)",
    EnergySource.NUCLEAR: "Net generation from nuclear (MW)",
    EnergySource.NATURAL_GAS: "Net generation from natural gas (MW)",
    EnergySource.COAL: "Net generation from coal (MW)",
    EnergySource.OIL: "Net generation from petroleum (MW)",
    EnergySource.OTHER: "Net generation from other (MW)",
}

_COLUMN_TO_FUEL = {column: fuel for fuel, column in FUEL_COLUMNS.items()}

PathOrFile = Union[str, pathlib.Path, TextIO]


class GridCsvError(ValueError):
    """A malformed EIA-style grid CSV (wrong columns, rows, or values)."""


def _timestamps(calendar: YearCalendar) -> List[str]:
    start = _dt.datetime(calendar.year, 1, 1)
    return [
        (start + _dt.timedelta(hours=hour)).strftime("%Y-%m-%dT%H:00")
        for hour in range(calendar.n_hours)
    ]


def write_grid_csv(grid: GridDataset, destination: PathOrFile) -> None:
    """Write a :class:`GridDataset` as an EIA-style wide CSV.

    Columns: timestamp, demand, one per fuel (in enum order), curtailed.
    """
    fuels = list(FUEL_COLUMNS)
    header = (
        [TIMESTAMP_COLUMN, DEMAND_COLUMN]
        + [FUEL_COLUMNS[fuel] for fuel in fuels]
        + [CURTAILED_COLUMN]
    )
    stamps = _timestamps(grid.calendar)

    def _write(handle: TextIO) -> None:
        writer = csv.writer(handle)
        writer.writerow(["Balancing Authority", grid.authority.code])
        writer.writerow(header)
        demand = grid.demand.values
        fuel_values = [grid.source(fuel).values for fuel in fuels]
        curtailed = grid.curtailed.values
        for hour, stamp in enumerate(stamps):
            row = [stamp, f"{demand[hour]:.3f}"]
            row.extend(f"{values[hour]:.3f}" for values in fuel_values)
            row.append(f"{curtailed[hour]:.3f}")
            writer.writerow(row)

    if isinstance(destination, (str, pathlib.Path)):
        with open(destination, "w", newline="") as handle:
            _write(handle)
    else:
        _write(destination)


def _parse_float(text: str, row_index: int, column: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise GridCsvError(
            f"row {row_index}: column {column!r} is not numeric: {text!r}"
        ) from None
    if not np.isfinite(value):
        raise GridCsvError(f"row {row_index}: column {column!r} is not finite")
    if value < 0:
        raise GridCsvError(f"row {row_index}: column {column!r} is negative: {value}")
    return value


def read_grid_csv(source: PathOrFile, year: Optional[int] = None) -> GridDataset:
    """Parse an EIA-style wide CSV back into a :class:`GridDataset`.

    Parameters
    ----------
    source:
        Path or open text handle produced by :func:`write_grid_csv` (or a
        real EIA export reshaped to these column names).
    year:
        Calendar year the file covers; inferred from the first timestamp
        when omitted.

    Raises
    ------
    GridCsvError
        On unknown balancing authority, missing/unknown columns, wrong row
        count, out-of-order timestamps, or non-numeric/negative values.
    """
    if isinstance(source, (str, pathlib.Path)):
        with open(source, newline="") as handle:
            content = handle.read()
    else:
        content = source.read()

    reader = csv.reader(io.StringIO(content))
    rows = list(reader)
    if len(rows) < 3:
        raise GridCsvError("file too short: need BA row, header row, and data")

    ba_row = rows[0]
    if len(ba_row) != 2 or ba_row[0] != "Balancing Authority":
        raise GridCsvError(f"first row must be ['Balancing Authority', code], got {ba_row}")
    try:
        authority = get_authority(ba_row[1])
    except KeyError as error:
        raise GridCsvError(str(error)) from None

    header = rows[1]
    if header[0] != TIMESTAMP_COLUMN or header[1] != DEMAND_COLUMN:
        raise GridCsvError(
            f"header must start with {TIMESTAMP_COLUMN!r}, {DEMAND_COLUMN!r}; got {header[:2]}"
        )
    fuel_indices: Dict[EnergySource, int] = {}
    curtailed_index = None
    for index, column in enumerate(header[2:], start=2):
        if column == CURTAILED_COLUMN:
            curtailed_index = index
        elif column in _COLUMN_TO_FUEL:
            fuel_indices[_COLUMN_TO_FUEL[column]] = index
        else:
            raise GridCsvError(f"unknown column {column!r}")
    missing = [f.value for f in FUEL_COLUMNS if f not in fuel_indices]
    if missing:
        raise GridCsvError(f"missing fuel columns: {missing}")

    data_rows = rows[2:]
    if year is None:
        try:
            year = int(data_rows[0][0][:4])
        except (ValueError, IndexError):
            raise GridCsvError(
                f"cannot infer year from first timestamp {data_rows[0][:1]}"
            ) from None
    calendar = YearCalendar(year)
    if len(data_rows) != calendar.n_hours:
        raise GridCsvError(
            f"expected {calendar.n_hours} hourly rows for {year}, got {len(data_rows)}"
        )

    expected_stamps = _timestamps(calendar)
    demand = np.empty(calendar.n_hours)
    curtailed = np.zeros(calendar.n_hours)
    fuels = {fuel: np.empty(calendar.n_hours) for fuel in fuel_indices}
    for hour, row in enumerate(data_rows):
        if row[0] != expected_stamps[hour]:
            raise GridCsvError(
                f"row {hour}: timestamp {row[0]!r} out of order "
                f"(expected {expected_stamps[hour]!r})"
            )
        demand[hour] = _parse_float(row[1], hour, DEMAND_COLUMN)
        for fuel, index in fuel_indices.items():
            fuels[fuel][hour] = _parse_float(row[index], hour, FUEL_COLUMNS[fuel])
        if curtailed_index is not None:
            curtailed[hour] = _parse_float(row[curtailed_index], hour, CURTAILED_COLUMN)

    generation = {
        fuel: HourlySeries(values, calendar, name=fuel.value)
        for fuel, values in fuels.items()
    }
    return GridDataset(
        authority=authority,
        generation=generation,
        demand=HourlySeries(demand, calendar, name="demand"),
        curtailed=HourlySeries(curtailed, calendar, name="curtailed"),
    )
