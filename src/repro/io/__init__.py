"""CSV interchange: EIA-style grid exports and plain hourly trace files."""

from .eia_csv import (
    CURTAILED_COLUMN,
    DEMAND_COLUMN,
    FUEL_COLUMNS,
    TIMESTAMP_COLUMN,
    GridCsvError,
    read_grid_csv,
    write_grid_csv,
)
from .traces import TraceCsvError, read_trace_csv, write_trace_csv

__all__ = [
    "CURTAILED_COLUMN",
    "DEMAND_COLUMN",
    "FUEL_COLUMNS",
    "TIMESTAMP_COLUMN",
    "GridCsvError",
    "read_grid_csv",
    "write_grid_csv",
    "TraceCsvError",
    "read_trace_csv",
    "write_trace_csv",
]
