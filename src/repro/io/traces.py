"""Plain trace CSV interchange for demand/supply series.

Datacenter operators exporting their own hourly power traces need a simpler
format than the wide grid CSV: two columns, timestamp and megawatts.  These
helpers read and write that format for any :class:`HourlySeries`, with the
same strictness guarantees as the grid reader (full year, ordered hours,
finite non-negative values).
"""

from __future__ import annotations

import csv
import datetime as _dt
import io
import pathlib
from typing import Optional, TextIO, Union

import numpy as np

from ..timeseries import HourlySeries, YearCalendar

PathOrFile = Union[str, pathlib.Path, TextIO]


class TraceCsvError(ValueError):
    """A malformed two-column trace CSV."""


def write_trace_csv(series: HourlySeries, destination: PathOrFile) -> None:
    """Write an :class:`HourlySeries` as ``timestamp,value_mw`` rows."""
    calendar = series.calendar
    start = _dt.datetime(calendar.year, 1, 1)

    def _write(handle: TextIO) -> None:
        writer = csv.writer(handle)
        writer.writerow(["UTC time", series.name or "value (MW)"])
        for hour, value in enumerate(series.values):
            stamp = (start + _dt.timedelta(hours=hour)).strftime("%Y-%m-%dT%H:00")
            writer.writerow([stamp, f"{value:.6f}"])

    if isinstance(destination, (str, pathlib.Path)):
        with open(destination, "w", newline="") as handle:
            _write(handle)
    else:
        _write(destination)


def read_trace_csv(
    source: PathOrFile, year: Optional[int] = None, allow_negative: bool = False
) -> HourlySeries:
    """Parse a two-column trace CSV back into an :class:`HourlySeries`.

    Parameters
    ----------
    source:
        Path or open handle of a file produced by :func:`write_trace_csv`.
    year:
        Calendar year; inferred from the first timestamp when omitted.
    allow_negative:
        Permit negative values (e.g. net-flow traces).  Power traces should
        leave this off so data errors surface immediately.
    """
    if isinstance(source, (str, pathlib.Path)):
        with open(source, newline="") as handle:
            content = handle.read()
    else:
        content = source.read()

    rows = list(csv.reader(io.StringIO(content)))
    if len(rows) < 2:
        raise TraceCsvError("file too short: need a header row and data")
    header, data_rows = rows[0], rows[1:]
    if len(header) != 2:
        raise TraceCsvError(f"expected two columns, got header {header}")

    if year is None:
        try:
            year = int(data_rows[0][0][:4])
        except (ValueError, IndexError):
            raise TraceCsvError("cannot infer year from first timestamp") from None
    calendar = YearCalendar(year)
    if len(data_rows) != calendar.n_hours:
        raise TraceCsvError(
            f"expected {calendar.n_hours} hourly rows for {year}, got {len(data_rows)}"
        )

    start = _dt.datetime(calendar.year, 1, 1)
    values = np.empty(calendar.n_hours)
    for hour, row in enumerate(data_rows):
        if len(row) != 2:
            raise TraceCsvError(f"row {hour}: expected two cells, got {row}")
        expected = (start + _dt.timedelta(hours=hour)).strftime("%Y-%m-%dT%H:00")
        if row[0] != expected:
            raise TraceCsvError(
                f"row {hour}: timestamp {row[0]!r} out of order (expected {expected!r})"
            )
        try:
            value = float(row[1])
        except ValueError:
            raise TraceCsvError(f"row {hour}: non-numeric value {row[1]!r}") from None
        if not np.isfinite(value):
            raise TraceCsvError(f"row {hour}: value is not finite")
        if value < 0 and not allow_negative:
            raise TraceCsvError(f"row {hour}: negative value {value}")
        values[hour] = value
    return HourlySeries(values, calendar, name=header[1])
