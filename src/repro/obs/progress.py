"""Progress reporting for long-running sweeps.

The optimizer accepts any callable matching :class:`ProgressCallback`;
the library itself never prints.  :class:`ProgressTicker` is the CLI's
implementation: a single self-rewriting ``evaluated/total`` line on
stderr, automatically silent when the stream is not an interactive
terminal (so piped and logged runs stay clean), and rate-limited so the
callback costs nothing measurable even for very fine sweeps.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

try:  # Python 3.8+: typing.Protocol
    from typing import Protocol
except ImportError:  # pragma: no cover - ancient interpreters only
    Protocol = object  # type: ignore[assignment]


class ProgressCallback(Protocol):
    """Protocol for sweep progress consumers.

    Called after each completed unit of work with the number of units
    ``done`` so far, the ``total`` expected, and a short human ``label``
    for the phase (e.g. the strategy name being swept).
    """

    def __call__(self, done: int, total: int, label: str) -> None:  # pragma: no cover
        ...


def null_progress(done: int, total: int, label: str) -> None:
    """A progress callback that does nothing (the library default)."""


class ProgressTicker:
    """Render progress as a rewriting ``label: done/total`` stderr line.

    Parameters
    ----------
    stream:
        Destination stream; defaults to ``sys.stderr``.
    min_interval_s:
        Minimum seconds between repaints (final updates always paint).
    force:
        Paint even when the stream is not a TTY (used by tests; also
        handy under ``script``/CI when a ticker is explicitly wanted).
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        min_interval_s: float = 0.1,
        force: bool = False,
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval_s = min_interval_s
        self._active = force or bool(
            getattr(self._stream, "isatty", lambda: False)()
        )
        self._last_paint = float("-inf")
        self._last_width = 0

    def __call__(self, done: int, total: int, label: str) -> None:
        if not self._active:
            return
        now = time.monotonic()
        if done < total and now - self._last_paint < self._min_interval_s:
            return
        self._last_paint = now
        if total > 0:
            line = f"{label}: {done}/{total} ({100.0 * done / total:.0f}%)"
        else:
            line = f"{label}: {done}"
        padding = " " * max(self._last_width - len(line), 0)
        self._stream.write(f"\r{line}{padding}")
        self._stream.flush()
        self._last_width = len(line)

    def close(self) -> None:
        """Erase the ticker line so subsequent output starts clean."""
        if not self._active or self._last_width == 0:
            return
        self._stream.write("\r" + " " * self._last_width + "\r")
        self._stream.flush()
        self._last_width = 0
