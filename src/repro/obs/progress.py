"""Progress reporting for long-running sweeps.

The optimizer accepts any callable matching :class:`ProgressCallback`;
the library itself never prints.  :class:`ProgressTicker` is the CLI's
implementation: a single self-rewriting ``evaluated/total`` line on
stderr, automatically silent when the stream is not an interactive
terminal (so piped and logged runs stay clean), and rate-limited so the
callback costs nothing measurable even for very fine sweeps.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

try:  # Python 3.8+: typing.Protocol
    from typing import Protocol
except ImportError:  # pragma: no cover - ancient interpreters only
    Protocol = object  # type: ignore[assignment]


class ProgressCallback(Protocol):
    """Protocol for sweep progress consumers.

    Called after each completed unit of work with the number of units
    ``done`` so far, the ``total`` expected, and a short human ``label``
    for the phase (e.g. the strategy name being swept).

    **Semantics of ``done``.**  ``done`` is a *completed count*, not a
    grid position: parallel sweeps complete chunks out of grid order, so
    ``done == k`` means "k evaluations finished somewhere in the grid",
    never "the first k grid points are finished".  Within one sweep the
    reported counts are non-decreasing, and a resumed sweep's first call
    may jump straight to the number of checkpointed evaluations.
    Consumers must treat ``(done, total)`` as a pair — rendering
    ``done`` alone, or assuming unit increments, is wrong — and should
    tolerate a misbehaving producer (``done > total`` or a decrease)
    rather than crash mid-sweep; :class:`ProgressTicker` clamps both.
    """

    def __call__(self, done: int, total: int, label: str) -> None:  # pragma: no cover
        ...


def null_progress(done: int, total: int, label: str) -> None:
    """A progress callback that does nothing (the library default)."""


class ProgressTicker:
    """Render progress as a rewriting ``label: done/total`` stderr line.

    Parameters
    ----------
    stream:
        Destination stream; defaults to ``sys.stderr``.
    min_interval_s:
        Minimum seconds between repaints (final updates always paint).
    force:
        Paint even when the stream is not a TTY (used by tests; also
        handy under ``script``/CI when a ticker is explicitly wanted).
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        min_interval_s: float = 0.1,
        force: bool = False,
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval_s = min_interval_s
        self._active = force or bool(
            getattr(self._stream, "isatty", lambda: False)()
        )
        self._last_paint = float("-inf")
        self._last_width = 0
        self._max_done = 0
        self._last_label: Optional[str] = None

    def __call__(self, done: int, total: int, label: str) -> None:
        if not self._active:
            return
        # Robustness to producers that misreport: never paint a count
        # above the total or below one already shown for this phase
        # (chunked sweeps complete out of grid order; see
        # ProgressCallback).  A new label is a new phase with its own
        # count.
        if label != self._last_label:
            self._last_label = label
            self._max_done = 0
        if total > 0:
            done = min(done, total)
        done = max(done, self._max_done)
        self._max_done = done
        now = time.monotonic()
        if done < total and now - self._last_paint < self._min_interval_s:
            return
        self._last_paint = now
        if total > 0:
            line = f"{label}: {done}/{total} ({100.0 * done / total:.0f}%)"
        else:
            line = f"{label}: {done}"
        padding = " " * max(self._last_width - len(line), 0)
        self._stream.write(f"\r{line}{padding}")
        self._stream.flush()
        self._last_width = len(line)

    def close(self) -> None:
        """Erase the ticker line so subsequent output starts clean."""
        if not self._active or self._last_width == 0:
            return
        self._stream.write("\r" + " " * self._last_width + "\r")
        self._stream.flush()
        self._last_width = 0
