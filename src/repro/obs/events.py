"""Sweep event bus: typed, ordered, subscribable sweep lifecycle events.

The optimizer narrates a sweep onto a :class:`SweepEvents` bus as it
runs — ``sweep_started``, one ``chunk_completed`` per committed grid
chunk (including chunks restored from a checkpoint journal, mirrored with
``resumed: true``), ``chunk_retried`` per re-submitted parallel chunk,
``frontier_updated`` whenever a committed chunk lowers the best total
carbon seen so far, and ``sweep_finished`` with the optimum.  This is the
streaming substrate for the ROADMAP's cross-site scheduler and
explorer-as-a-service items: anything that wants partial results while a
sweep runs subscribes here instead of polling the journal file.

Guarantees:

* **Typed** — event kinds are declared in
  :data:`repro.obs.metric_names.EVENTS` (one source of truth, enforced
  statically by lint rule RL007 and at runtime by a validating bus).
* **Ordered** — every event is stamped with a per-bus monotonically
  increasing ``seq`` under one lock, and subscribers are invoked while
  that lock is held, so every subscriber observes the same total order.
  All events are emitted from the sweep's parent process (workers ship
  telemetry back data-plane-side; they never touch the bus), so ``seq``
  order is also emission order.
* **Worker-count independent** — grid chunking is a pure function of the
  grid size (see ``repro.core.optimizer``), so the ``chunk_completed``
  count for a given sweep is identical serial vs. parallel.

Three consumption styles::

    bus = SweepEvents()
    unsubscribe = bus.subscribe(print)          # push: called per event
    optimize(context, space, strategy, events=bus)
    for event in bus.events():                  # batch: after the fact
        ...

    with JsonlSink("events.jsonl") as sink:     # durable: JSONL file
        bus.subscribe(sink)
        optimize(..., events=bus)

and a pull iterator for a consumer on another thread::

    for event in bus.stream():                  # blocks; ends on close()
        ...
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from . import metric_names
from .log import get_logger

PathLike = Union[str, "os.PathLike[str]"]

_log = get_logger("obs.events")

#: Event-stream format identifier (first line of a JSONL sink's output).
EVENTS_FORMAT = "repro-sweep-events/1"


@dataclass(frozen=True)
class SweepEvent:
    """One bus event: a kind, a total-order sequence number, a payload."""

    seq: int
    kind: str
    time_s: float
    payload: Dict[str, Any] = field(default_factory=dict)

    def as_json(self) -> Dict[str, Any]:
        """JSON-serializable record (what :class:`JsonlSink` writes)."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "time_s": self.time_s,
            "payload": self.payload,
        }


#: A push subscriber: called synchronously, in seq order, per event.
EventCallback = Callable[[SweepEvent], None]


class SweepEvents:
    """A thread-safe, ordered, in-process event bus for sweep telemetry.

    ``validate=True`` (the default) checks every emitted kind against
    :data:`repro.obs.metric_names.EVENTS` and raises
    :class:`~repro.obs.metric_names.UnknownMetricError` on an undeclared
    one — the runtime backstop behind the static RL007 lint rule.

    Subscribers run synchronously under the bus lock, which is what makes
    the observed order identical for every subscriber; keep callbacks
    cheap (append to a list, write one JSONL line).  A subscriber that
    raises poisons the emitting sweep — deliberately, because silently
    dropping telemetry is how event streams lie.
    """

    def __init__(self, validate: bool = True) -> None:
        self.validate = validate
        self._lock = threading.Lock()
        self._seq = 0
        self._events: List[SweepEvent] = []
        self._subscribers: List[EventCallback] = []
        self._streams: List["queue.Queue[Optional[SweepEvent]]"] = []
        self._closed = False

    # ------------------------------------------------------------------
    # Producing
    # ------------------------------------------------------------------
    def emit(self, kind: str, **payload: Any) -> SweepEvent:
        """Append one event to the bus and fan it out to subscribers.

        Returns the stamped :class:`SweepEvent`.  Raises
        :class:`~repro.obs.metric_names.UnknownMetricError` for an
        undeclared kind on a validating bus, and :class:`RuntimeError`
        when the bus is already closed.
        """
        if self.validate:
            metric_names.check_metric("event", kind)
        with self._lock:
            if self._closed:
                raise RuntimeError(
                    f"cannot emit {kind!r}: this SweepEvents bus is closed"
                )
            event = SweepEvent(
                seq=self._seq, kind=kind, time_s=time.time(), payload=payload
            )
            self._seq += 1
            self._events.append(event)
            for callback in self._subscribers:
                callback(event)
            for stream in self._streams:
                stream.put(event)
        return event

    def close(self) -> None:
        """Mark the bus finished; wake and end every :meth:`stream` iterator.

        Idempotent.  Further :meth:`emit` calls raise.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for stream in self._streams:
                stream.put(None)

    # ------------------------------------------------------------------
    # Consuming
    # ------------------------------------------------------------------
    def subscribe(self, callback: EventCallback) -> Callable[[], None]:
        """Register a push subscriber; returns an unsubscribe callable."""
        with self._lock:
            self._subscribers.append(callback)

        def unsubscribe() -> None:
            with self._lock:
                if callback in self._subscribers:
                    self._subscribers.remove(callback)

        return unsubscribe

    def events(self) -> Tuple[SweepEvent, ...]:
        """Every event emitted so far, in seq order."""
        with self._lock:
            return tuple(self._events)

    def counts(self) -> Dict[str, int]:
        """Emitted events tallied by kind (handy for stream assertions)."""
        tally: Dict[str, int] = {}
        for event in self.events():
            tally[event.kind] = tally.get(event.kind, 0) + 1
        return dict(sorted(tally.items()))

    def stream(
        self, stop: Optional[threading.Event] = None
    ) -> Iterator[SweepEvent]:
        """A blocking pull iterator over events as they are emitted.

        Yields every event already on the bus, then blocks for new ones;
        ends when :meth:`close` is called.  Each call gets an independent
        cursor, so multiple consumers can stream concurrently.

        ``stop`` bounds the iterator without closing the bus: once the
        event is set, the iterator drains whatever was already emitted
        and then ends.  This is how :meth:`repro.core.SweepEngine.results`
        terminates per-sweep consumers on a long-lived, shared bus (which
        must stay open for the next sweep).
        """
        stream: "queue.Queue[Optional[SweepEvent]]" = queue.Queue()
        with self._lock:
            backlog = list(self._events)
            closed = self._closed
            if not closed:
                self._streams.append(stream)
        for event in backlog:
            yield event
        if closed:
            return
        try:
            while True:
                if stop is None:
                    event = stream.get()
                else:
                    try:
                        event = stream.get(timeout=0.05)
                    except queue.Empty:
                        if not stop.is_set():
                            continue
                        # Stopped: drain events that raced the stop flag,
                        # then end without waiting for close().
                        while True:
                            try:
                                event = stream.get_nowait()
                            except queue.Empty:
                                return
                            if event is None:
                                return
                            yield event
                if event is None:
                    return
                yield event
        finally:
            with self._lock:
                if stream in self._streams:
                    self._streams.remove(stream)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        with self._lock:
            return self._closed


class JsonlSink:
    """A push subscriber that appends events to a JSONL file.

    Line 1 is a format header (``{"format": "repro-sweep-events/1"}``);
    every further line is one :meth:`SweepEvent.as_json` record, written
    and flushed as the event fires so a crashed run still leaves every
    event that was emitted.  Use as a context manager or call
    :meth:`close`.
    """

    def __init__(self, path: PathLike) -> None:
        self._path = str(path)
        parent = os.path.dirname(self._path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle = open(self._path, "w", encoding="utf-8")
        self._handle.write(json.dumps({"format": EVENTS_FORMAT}) + "\n")
        self._handle.flush()
        self.events_written = 0

    @property
    def path(self) -> str:
        """Location of the JSONL file."""
        return self._path

    def __call__(self, event: SweepEvent) -> None:
        self._handle.write(json.dumps(event.as_json(), sort_keys=True) + "\n")
        self._handle.flush()
        self.events_written += 1

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_events_jsonl(path: PathLike) -> List[Dict[str, Any]]:
    """Load a :class:`JsonlSink` file back into event records.

    Validates the format header and returns the event records (header
    excluded).  Raises :class:`ValueError` on a missing/mismatched header
    or an unparseable line — event files are small enough that damage
    should fail loudly, not truncate silently.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle.read().split("\n") if line]
    if not lines:
        raise ValueError(f"events file {path}: empty")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("format") != EVENTS_FORMAT:
        raise ValueError(
            f"events file {path}: missing/unknown format header "
            f"(expected {EVENTS_FORMAT!r})"
        )
    records: List[Dict[str, Any]] = []
    for number, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"events file {path}: line {number} is not valid JSON "
                f"({error})"
            ) from None
        if not isinstance(record, dict) or "kind" not in record:
            raise ValueError(
                f"events file {path}: line {number} is not an event record"
            )
        records.append(record)
    return records
