"""Observability for the exploration pipeline: tracing, metrics, progress, logging.

Everything here is off by default and built to stay out of the way: the
instrumented library pays one flag check per call site until a caller
opts in.  Three independent facilities:

* :mod:`~repro.obs.trace` — hierarchical spans with wall/CPU timing,
  exportable as a nested span tree or Chrome ``trace_event`` JSON;
* :mod:`~repro.obs.metrics` — a process-wide registry of counters,
  gauges, and histograms with JSON snapshot and text rendering;
* :mod:`~repro.obs.progress` — a progress-callback protocol plus the
  CLI's stderr ticker;
* :mod:`~repro.obs.log` — stdlib ``logging`` helpers for the ``repro.*``
  namespace (the library never installs handlers; applications call
  :func:`configure_logging`);
* :mod:`~repro.obs.export` — Prometheus text-format exposition of the
  metrics registry: :func:`render_prometheus`, atomic
  :func:`save_prometheus`, a live ``/metrics`` endpoint
  (:class:`MetricsServer`), and the pure-python
  :func:`validate_exposition` checker;
* :mod:`~repro.obs.events` — the :class:`SweepEvents` bus: typed,
  ordered sweep lifecycle events with subscribe/stream APIs and a JSONL
  sink.

See the "Observability" section of README.md for the CLI surface
(``--log-level``, ``--trace-out``, ``--metrics-out``, ``repro stats``).
"""

from .events import (
    EVENTS_FORMAT,
    JsonlSink,
    SweepEvent,
    SweepEvents,
    read_events_jsonl,
)
from .export import (
    MetricsServer,
    render_prometheus,
    save_prometheus,
    start_metrics_server,
    validate_exposition,
)
from .log import LOGGER_NAME, configure_logging, get_logger
from .metric_names import (
    COUNTERS,
    EVENTS,
    GAUGES,
    HISTOGRAM_PATTERNS,
    UnknownMetricError,
    check_metric,
    is_known_metric,
)
from .metrics import (
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    gauge_value,
    get_registry,
    inc,
    merge_counters,
    merge_snapshot,
    metrics_enabled,
    metrics_snapshot,
    observe,
    render_metrics,
    reset_metrics,
    save_metrics,
    set_gauge,
)
from .progress import ProgressCallback, ProgressTicker, null_progress
from .trace import (
    Span,
    TREE_FORMAT,
    Tracer,
    disable_tracing,
    enable_tracing,
    export_spans,
    get_tracer,
    ingest_spans,
    render_trace,
    reset_tracing,
    save_trace,
    span,
    trace_roots,
    trace_tree,
    tracing_enabled,
)

__all__ = [
    "LOGGER_NAME",
    "configure_logging",
    "get_logger",
    "EVENTS_FORMAT",
    "JsonlSink",
    "SweepEvent",
    "SweepEvents",
    "read_events_jsonl",
    "MetricsServer",
    "render_prometheus",
    "save_prometheus",
    "start_metrics_server",
    "validate_exposition",
    "BUCKET_BOUNDS",
    "merge_snapshot",
    "export_spans",
    "ingest_spans",
    "COUNTERS",
    "EVENTS",
    "GAUGES",
    "HISTOGRAM_PATTERNS",
    "UnknownMetricError",
    "check_metric",
    "is_known_metric",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "disable_metrics",
    "enable_metrics",
    "gauge_value",
    "get_registry",
    "inc",
    "merge_counters",
    "metrics_enabled",
    "metrics_snapshot",
    "observe",
    "render_metrics",
    "reset_metrics",
    "save_metrics",
    "set_gauge",
    "ProgressCallback",
    "ProgressTicker",
    "null_progress",
    "Span",
    "TREE_FORMAT",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "render_trace",
    "reset_tracing",
    "save_trace",
    "span",
    "trace_roots",
    "trace_tree",
    "tracing_enabled",
]
