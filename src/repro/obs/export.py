"""Prometheus text-format exposition of the metrics registry.

Three export surfaces over one renderer:

* :func:`render_prometheus` — the registry snapshot as Prometheus
  text-format 0.0.4 (``# HELP``/``# TYPE`` per family, counters as
  ``<name>_total``, histograms with cumulative buckets plus ``_sum`` and
  ``_count``);
* :func:`save_prometheus` — atomic snapshot-to-file export (write to a
  temp file, ``os.replace`` into place) so a node-exporter textfile
  collector can scrape the artifact without ever seeing a torn write;
* :class:`MetricsServer` / :func:`start_metrics_server` — a stdlib
  ``http.server`` thread serving ``GET /metrics`` from the default
  registry, wired to the CLI's ``--metrics-port`` flag so a running
  ``optimize``/``rank`` sweep is scrapeable live.

:func:`validate_exposition` is a pure-python checker for the exposition
format (HELP/TYPE ordering, family contiguity, label escaping, monotone
cumulative buckets, ``_count``/``+Inf`` agreement) used by the test suite
and by CI (``python -m repro.obs.export FILE``) to gate what this module
renders — the golden file can rot, the validator's rules cannot.

Metric names are mapped into the Prometheus namespace by prefixing
``repro_`` and replacing every character outside ``[a-zA-Z0-9_:]`` with
``_`` (``span.optimize.seconds`` → ``repro_span_optimize_seconds``).
"""

from __future__ import annotations

import math
import os
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple, Union

from .log import get_logger
from .metrics import BUCKET_BOUNDS, metrics_snapshot

PathLike = Union[str, "os.PathLike[str]"]

_log = get_logger("obs.export")

#: Content type of the text exposition format (what Prometheus expects).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Namespace prefixed onto every exported metric name.
NAMESPACE = "repro"

_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str) -> str:
    """Map a registry metric name into the exported Prometheus name."""
    return f"{NAMESPACE}_{_INVALID_NAME_CHARS.sub('_', name)}"


def _format_value(value: float) -> str:
    """Render a sample value (integral floats as integers, else repr)."""
    if isinstance(value, bool):  # pragma: no cover - never stored
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format spec."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _histogram_lines(name: str, stats: Dict[str, Any]) -> List[str]:
    """One histogram family: cumulative buckets, ``_sum``, ``_count``.

    The snapshot's sparse ``buckets`` dict (``le``-bound key → per-bucket
    count) is re-expanded over the full shared :data:`BUCKET_BOUNDS` axis
    and accumulated, because Prometheus buckets are cumulative.
    """
    sparse = {str(key): int(count) for key, count in stats["buckets"].items()}
    lines = [
        f"# HELP {name} Histogram of the repro.obs metrics registry.",
        f"# TYPE {name} histogram",
    ]
    cumulative = 0
    for bound in BUCKET_BOUNDS:
        cumulative += sparse.get(f"{bound:.6g}", 0)
        lines.append(f'{name}_bucket{{le="{bound:.6g}"}} {cumulative}')
    cumulative += sparse.get("inf", 0)
    lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
    lines.append(f"{name}_sum {_format_value(float(stats['sum']))}")
    lines.append(f"{name}_count {int(stats['count'])}")
    return lines


def render_prometheus(snapshot: Optional[Dict[str, Any]] = None) -> str:
    """Render a metrics snapshot as Prometheus text-format 0.0.4.

    ``snapshot`` defaults to the live default registry
    (:func:`repro.obs.metrics.metrics_snapshot`); any snapshot-shaped
    dict — e.g. one loaded back from a ``--metrics-out`` JSON file or a
    ``benchmarks/out/*.json`` artifact — renders identically.  Families
    are emitted counters → gauges → histograms, each kind sorted by name,
    so the output is deterministic for a given snapshot.
    """
    if snapshot is None:
        snapshot = metrics_snapshot()
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        exported = f"{prometheus_name(name)}_total"
        lines.append(
            f"# HELP {exported} "
            f"{_escape_help(f'Counter {name} of the repro.obs metrics registry.')}"
        )
        lines.append(f"# TYPE {exported} counter")
        lines.append(f"{exported} {_format_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        exported = prometheus_name(name)
        lines.append(
            f"# HELP {exported} "
            f"{_escape_help(f'Gauge {name} of the repro.obs metrics registry.')}"
        )
        lines.append(f"# TYPE {exported} gauge")
        lines.append(f"{exported} {_format_value(value)}")
    for name, stats in sorted(snapshot.get("histograms", {}).items()):
        lines.extend(_histogram_lines(prometheus_name(name), stats))
    return "\n".join(lines) + "\n" if lines else ""


def save_prometheus(
    path: PathLike, snapshot: Optional[Dict[str, Any]] = None
) -> None:
    """Atomically write the exposition text to ``path``.

    The rendering is written to ``<path>.tmp.<pid>`` in the same
    directory and moved into place with ``os.replace``, so a concurrent
    scraper (node-exporter textfile collector, ``cat`` in a loop) sees
    either the previous complete file or the new complete file — never a
    partial write.
    """
    target = str(path)
    parent = os.path.dirname(target)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = f"{target}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(render_prometheus(snapshot))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


# ----------------------------------------------------------------------
# Exposition-format validator (pure python, used by tests and CI)
# ----------------------------------------------------------------------

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<timestamp>-?\d+))?\s*$"
)
_VALID_TYPES = frozenset(
    {"counter", "gauge", "histogram", "summary", "untyped"}
)

#: Sample-name suffixes each complex type may emit beyond the bare name.
_TYPE_SUFFIXES = {
    "histogram": ("_bucket", "_sum", "_count"),
    "summary": ("_sum", "_count"),
}


def _parse_labels(raw: str) -> Optional[List[Tuple[str, str]]]:
    """Parse ``k="v",k2="v2"`` label bodies; ``None`` on any syntax error.

    Escapes inside values are restricted to ``\\\\``, ``\\"`` and
    ``\\n`` — anything else is a syntax error, which is exactly the
    "label escaping" class of bug this validator exists to catch.
    """
    labels: List[Tuple[str, str]] = []
    index = 0
    length = len(raw)
    while index < length:
        equals = raw.find('="', index)
        if equals < 0:
            return None
        name = raw[index:equals]
        if not _LABEL_NAME_RE.match(name):
            return None
        index = equals + 2
        value_chars: List[str] = []
        closed = False
        while index < length:
            char = raw[index]
            if char == "\\":
                if index + 1 >= length or raw[index + 1] not in ('\\', '"', "n"):
                    return None
                value_chars.append(raw[index : index + 2])
                index += 2
                continue
            if char == '"':
                closed = True
                index += 1
                break
            value_chars.append(char)
            index += 1
        if not closed:
            return None
        labels.append((name, "".join(value_chars)))
        if index < length:
            if raw[index] != ",":
                return None
            index += 1
    return labels


def _family_of(sample_name: str, types: Dict[str, str]) -> str:
    """The family a sample belongs to, honouring typed suffixes."""
    for family, declared in types.items():
        if sample_name == family:
            return family
        for suffix in _TYPE_SUFFIXES.get(declared, ()):
            if sample_name == family + suffix:
                return family
    return sample_name


def _parse_float(text: str) -> Optional[float]:
    try:
        return float(text)
    except ValueError:
        return None


def validate_exposition(text: str) -> List[str]:
    """Check Prometheus text-format 0.0.4 exposition; return problem list.

    An empty return value means the document is valid.  Enforced rules:

    * ``# HELP``/``# TYPE`` lines carry valid metric names; at most one of
      each per family; both precede the family's first sample; ``TYPE``
      is a known type.
    * Samples parse (name, optional ``{labels}``, float value, optional
      timestamp); label names are valid and label values use only the
      ``\\\\``/``\\"``/``\\n`` escapes; no duplicate (name, labels) sample.
    * Families are contiguous — samples of one family never interleave
      with another's.
    * Counter families' samples end in ``_total``.
    * Histogram families: every ``_bucket`` sample carries exactly one
      ``le`` label, ``le`` values are parseable and strictly increasing,
      cumulative counts are non-decreasing, the ``+Inf`` bucket exists,
      and ``_count`` equals the ``+Inf`` bucket's value; ``_sum`` and
      ``_count`` are present.
    """
    problems: List[str] = []
    helps: Dict[str, int] = {}
    types: Dict[str, str] = {}
    seen_samples: set = set()
    family_order: List[str] = []
    finished_families: set = set()
    current_family: Optional[str] = None
    histograms: Dict[str, Dict[str, Any]] = {}

    def switch_family(family: str, line_no: int) -> None:
        nonlocal current_family
        if family == current_family:
            return
        if current_family is not None:
            finished_families.add(current_family)
        if family in finished_families:
            problems.append(
                f"line {line_no}: family {family!r} interleaved with other "
                "families (exposition requires contiguous families)"
            )
        current_family = family
        family_order.append(family)

    lines = text.split("\n")
    for line_no, line in enumerate(lines, start=1):
        if line == "":
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3:
                    problems.append(f"line {line_no}: malformed {parts[1]} line")
                    continue
                name = parts[2]
                if not _NAME_RE.match(name):
                    problems.append(
                        f"line {line_no}: invalid metric name {name!r}"
                    )
                    continue
                if parts[1] == "HELP":
                    if name in helps:
                        problems.append(
                            f"line {line_no}: duplicate HELP for {name!r}"
                        )
                    if name in types or name in finished_families or (
                        current_family == name
                    ):
                        problems.append(
                            f"line {line_no}: HELP for {name!r} must precede "
                            "its TYPE and samples"
                        )
                    helps[name] = line_no
                else:
                    declared = parts[3].strip() if len(parts) > 3 else ""
                    if declared not in _VALID_TYPES:
                        problems.append(
                            f"line {line_no}: unknown TYPE {declared!r} "
                            f"for {name!r}"
                        )
                    if name in types:
                        problems.append(
                            f"line {line_no}: duplicate TYPE for {name!r}"
                        )
                    if name in finished_families or current_family == name:
                        problems.append(
                            f"line {line_no}: TYPE for {name!r} must precede "
                            "its samples"
                        )
                    types[name] = declared
            # Other comment lines are free-form and legal.
            continue

        match = _SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {line_no}: unparseable sample line {line!r}")
            continue
        name = match.group("name")
        raw_labels = match.group("labels")
        labels = _parse_labels(raw_labels) if raw_labels is not None else []
        if labels is None:
            problems.append(
                f"line {line_no}: bad label syntax/escaping in {line!r}"
            )
            continue
        value = _parse_float(match.group("value"))
        if value is None:
            problems.append(
                f"line {line_no}: unparseable sample value "
                f"{match.group('value')!r}"
            )
            continue
        sample_key = (name, tuple(sorted(labels)))
        if sample_key in seen_samples:
            problems.append(
                f"line {line_no}: duplicate sample {name}{dict(labels)}"
            )
        seen_samples.add(sample_key)

        family = _family_of(name, types)
        switch_family(family, line_no)
        declared = types.get(family)
        if declared == "counter" and not name.endswith("_total"):
            problems.append(
                f"line {line_no}: counter sample {name!r} must end in "
                "'_total'"
            )
        if declared == "histogram":
            state = histograms.setdefault(
                family,
                {"last_le": None, "last_cum": None, "has_inf": False,
                 "inf_value": None, "sum": False, "count": None},
            )
            if name == f"{family}_bucket":
                label_names = [label_name for label_name, _ in labels]
                if label_names != ["le"]:
                    problems.append(
                        f"line {line_no}: histogram bucket must carry "
                        f"exactly the 'le' label, got {label_names}"
                    )
                    continue
                le_text = labels[0][1]
                le = _parse_float(le_text)
                if le is None:
                    problems.append(
                        f"line {line_no}: unparseable le bound {le_text!r}"
                    )
                    continue
                if state["last_le"] is not None and not le > state["last_le"]:
                    problems.append(
                        f"line {line_no}: histogram {family!r} le bounds "
                        f"not strictly increasing ({le_text!r})"
                    )
                if state["last_cum"] is not None and value < state["last_cum"]:
                    problems.append(
                        f"line {line_no}: histogram {family!r} cumulative "
                        f"bucket counts decreased at le={le_text!r}"
                    )
                state["last_le"] = le
                state["last_cum"] = value
                if math.isinf(le) and le > 0:
                    state["has_inf"] = True
                    state["inf_value"] = value
            elif name == f"{family}_sum":
                state["sum"] = True
            elif name == f"{family}_count":
                state["count"] = value

    for family, state in histograms.items():
        if not state["has_inf"]:
            problems.append(f"histogram {family!r}: missing '+Inf' bucket")
        if not state["sum"]:
            problems.append(f"histogram {family!r}: missing '_sum' sample")
        if state["count"] is None:
            problems.append(f"histogram {family!r}: missing '_count' sample")
        elif state["inf_value"] is not None and state["count"] != state["inf_value"]:
            problems.append(
                f"histogram {family!r}: _count ({state['count']:g}) disagrees "
                f"with the '+Inf' bucket ({state['inf_value']:g})"
            )
    return problems


# ----------------------------------------------------------------------
# Live /metrics endpoint
# ----------------------------------------------------------------------


class _MetricsHandler(BaseHTTPRequestHandler):
    """Serves ``GET /metrics`` from the default registry."""

    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_prometheus().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif path == "/":
            body = b"repro metrics exporter; scrape /metrics\n"
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_error(404, "unknown path (scrape /metrics)")

    def log_message(self, format: str, *args: Any) -> None:
        _log.debug("metrics server: " + format, *args)


class MetricsServer:
    """A background ``/metrics`` endpoint over the default registry.

    Binds on construction (``port=0`` picks a free port — tests use
    this), serves from a daemon thread after :meth:`start`, and is fully
    torn down by :meth:`close` (idempotent).  Usable as a context
    manager.
    """

    def __init__(self, port: int = 0, host: str = "127.0.0.1") -> None:
        self._server = ThreadingHTTPServer((host, port), _MetricsHandler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self.host = self._server.server_address[0]
        self.port = self._server.server_address[1]

    @property
    def url(self) -> str:
        """The scrape URL of this endpoint."""
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        """Begin serving in a daemon thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name=f"repro-metrics-{self.port}",
                daemon=True,
            )
            self._thread.start()
            _log.info("serving /metrics on %s", self.url)
        return self

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def start_metrics_server(port: int, host: str = "127.0.0.1") -> MetricsServer:
    """Bind and start a :class:`MetricsServer` (``port=0`` = ephemeral).

    Raises ``OSError`` when the port cannot be bound — callers surface
    that instead of silently running without the endpoint.
    """
    return MetricsServer(port=port, host=host).start()


def _main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.obs.export FILE`` — validate an exposition file.

    ``-`` reads stdin.  Exits 0 when valid, 1 with one problem per line
    on stderr otherwise.  This is the CI-facing entry point of
    :func:`validate_exposition`.
    """
    import sys

    args = sys.argv[1:] if argv is None else argv
    if len(args) != 1:
        print("usage: python -m repro.obs.export FILE", file=sys.stderr)
        return 2
    if args[0] == "-":
        text = sys.stdin.read()
    else:
        with open(args[0], "r", encoding="utf-8") as handle:
            text = handle.read()
    problems = validate_exposition(text)
    for problem in problems:
        print(problem, file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(_main())
