"""Lightweight hierarchical tracing: spans, span trees, Chrome export.

Usage in library code::

    from ..obs import span

    with span("optimize", strategy=strategy.value, site=site):
        ...

Spans nest: a span opened while another is active on the same thread
becomes its child, so a sweep produces an ``optimize`` →
``evaluate_design`` → ``simulate_battery`` tree whose wall-clock and CPU
timings localize where a slow run spends its time.

Tracing is **disabled by default** and engineered to cost almost nothing
that way: the module-level :func:`span` helper checks one flag and
returns a shared no-op context manager — no span object, no clock reads,
no locking.  When enabled, each span records wall time
(``time.perf_counter``) and per-thread CPU time (``time.thread_time``),
and finished spans feed a ``span.<name>.seconds`` histogram in the
metrics registry (when metrics are also enabled).

Finished trees export two ways:

* :meth:`Tracer.to_tree` — a nested JSON-serializable span tree (the
  ``--trace-out`` default);
* :meth:`Tracer.to_chrome_trace` — Chrome ``trace_event`` JSON, loadable
  in ``chrome://tracing`` / Perfetto.

The tracer is thread-safe: each thread keeps its own span stack, so
concurrent sweeps produce parallel root spans instead of corrupting each
other's ancestry.

**Cross-process aggregation.**  A sweep worker's spans would otherwise
die with the worker, so a tracer can :meth:`~Tracer.export_spans` its
finished trees as flat records stamped with *absolute* (unix-epoch)
start times, and a parent tracer :meth:`~Tracer.ingest_spans` them under
the worker's pid.  Chrome export then renders local spans on the parent
pid and every ingested batch on its own pid lane — one Perfetto timeline
for the whole parallel sweep.  Each process anchors ``perf_counter`` to
``time.time`` exactly once per tracer epoch, so lanes line up to within
wall-clock skew (sub-millisecond on one host); span *durations* are
always pure ``perf_counter`` deltas.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple, Union

from .metrics import observe

PathLike = Union[str, "os.PathLike[str]"]

#: Span-tree export format identifier (bump on incompatible changes).
TREE_FORMAT = "repro-span-tree/1"


class Span:
    """One timed, attributed region of execution."""

    __slots__ = (
        "name",
        "attrs",
        "children",
        "thread_id",
        "start_wall",
        "end_wall",
        "start_cpu",
        "end_cpu",
    )

    def __init__(self, name: str, attrs: Dict[str, Any], thread_id: int) -> None:
        self.name = name
        self.attrs = attrs
        self.children: List["Span"] = []
        self.thread_id = thread_id
        self.start_wall = 0.0
        self.end_wall = 0.0
        self.start_cpu = 0.0
        self.end_cpu = 0.0

    @property
    def wall_s(self) -> float:
        """Elapsed wall-clock seconds."""
        return self.end_wall - self.start_wall

    @property
    def cpu_s(self) -> float:
        """CPU seconds consumed by the owning thread."""
        return self.end_cpu - self.start_cpu

    def to_dict(self) -> Dict[str, Any]:
        """Nested JSON-serializable representation (children included)."""
        return {
            "name": self.name,
            "attrs": self.attrs,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "children": [child.to_dict() for child in self.children],
        }

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search of this subtree for a span named ``name``."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, wall={self.wall_s:.6f}s, children={len(self.children)})"


class _NullSpanContext:
    """Shared, stateless no-op context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class _SpanContext:
    """Context manager that opens a span on enter and closes it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._span = Span(name, attrs, threading.get_ident())

    def __enter__(self) -> Span:
        self._tracer._open(self._span)
        return self._span

    def __exit__(self, *exc_info: object) -> bool:
        self._tracer._close(self._span)
        return False


class Tracer:
    """Collects span trees; one per-thread stack, shared finished roots."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: List[Span] = []
        #: Foreign (ingested) span records grouped per source pid.
        self._foreign: List[Tuple[int, List[Dict[str, Any]]]] = []
        self._anchor()

    def _anchor(self) -> None:
        """Pin this tracer's epoch on both clocks.

        ``_epoch`` (``perf_counter``) is what local span timestamps are
        relative to; ``_epoch_abs`` (``time.time``) is the same instant
        in unix time, the shared axis that lets spans exported by other
        processes land on this tracer's timeline.
        """
        self._epoch = time.perf_counter()
        self._epoch_abs = time.time()

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Union[_SpanContext, _NullSpanContext]:
        """Open a span (``with tracer.span("name", key=value) as s:``).

        Returns the shared no-op context manager when disabled, so the
        disabled cost is a flag check and nothing else.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self, name, attrs)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        span.start_cpu = time.thread_time()
        span.start_wall = time.perf_counter()

    def _close(self, span: Span) -> None:
        span.end_wall = time.perf_counter()
        span.end_cpu = time.thread_time()
        stack = self._stack()
        # Pop through any spans abandoned by exceptions below us.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        if not stack:
            with self._lock:
                self._roots.append(span)
        observe(f"span.{span.name}.seconds", span.wall_s)

    # ------------------------------------------------------------------
    # Reading and exporting
    # ------------------------------------------------------------------
    def roots(self) -> Tuple[Span, ...]:
        """Finished top-level spans, in completion order."""
        with self._lock:
            return tuple(self._roots)

    def find(self, name: str) -> Optional[Span]:
        """First span named ``name`` across all finished trees."""
        for root in self.roots():
            found = root.find(name)
            if found is not None:
                return found
        return None

    def reset(self, drop_open: bool = False) -> None:
        """Drop all finished and ingested spans (open spans unaffected).

        ``drop_open=True`` also discards every thread's open span stack.
        A fork-started worker inherits the parent's stack with the
        sweep's ``optimize`` span still open; anything the worker records
        would nest under that never-closing ghost and never reach
        :meth:`roots`, so worker processes reset with ``drop_open=True``
        before recording.
        """
        with self._lock:
            self._roots.clear()
            self._foreign.clear()
        if drop_open:
            self._local = threading.local()
        self._anchor()

    def to_tree(self) -> Dict[str, Any]:
        """Nested span-tree document (JSON-serializable, local spans only)."""
        return {
            "format": TREE_FORMAT,
            "spans": [root.to_dict() for root in self.roots()],
        }

    # ------------------------------------------------------------------
    # Cross-process span aggregation
    # ------------------------------------------------------------------
    def export_spans(self) -> List[Dict[str, Any]]:
        """Flatten the finished local trees into portable span records.

        Each record carries the span name/attrs, its thread id, its
        *absolute* start time (unix seconds, via this tracer's clock
        anchor), and wall/CPU durations — everything a parent-process
        tracer needs to :meth:`ingest_spans` and re-render them on a
        worker pid lane.  Children follow their parent in the list, so
        nesting survives the flattening (Chrome reconstructs it from the
        overlapping intervals).
        """
        records: List[Dict[str, Any]] = []

        def add(span: Span) -> None:
            records.append(
                {
                    "name": span.name,
                    "attrs": span.attrs,
                    "tid": span.thread_id,
                    "start_s": self._epoch_abs + (span.start_wall - self._epoch),
                    "wall_s": span.wall_s,
                    "cpu_s": span.cpu_s,
                }
            )
            for child in span.children:
                add(child)

        for root in self.roots():
            add(root)
        return records

    def ingest_spans(self, records: List[Dict[str, Any]], pid: int) -> None:
        """Adopt span records exported by another process (no-op when
        disabled — mirrors how a disabled tracer records nothing local).

        ``pid`` labels the Chrome lane the records render on.  Records
        are stored as-is; malformed ones surface at export time.
        """
        if not self.enabled or not records:
            return
        with self._lock:
            self._foreign.append((int(pid), list(records)))

    def foreign_spans(self) -> Tuple[Tuple[int, List[Dict[str, Any]]], ...]:
        """Ingested (pid, records) batches, in ingestion order."""
        with self._lock:
            return tuple((pid, list(records)) for pid, records in self._foreign)

    def to_chrome_trace(self) -> Dict[str, Any]:
        """Chrome ``trace_event`` document for chrome://tracing / Perfetto.

        Local spans render on this process' pid; spans ingested from
        workers render on their own pid lanes, mapped onto this tracer's
        epoch through their absolute start stamps.  ``process_name``
        metadata events label the lanes.
        """
        events: List[Dict[str, Any]] = []
        pid = os.getpid()

        def add(span: Span) -> None:
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": (span.start_wall - self._epoch) * 1e6,
                    "dur": span.wall_s * 1e6,
                    "pid": pid,
                    "tid": span.thread_id,
                    "args": span.attrs,
                }
            )
            for child in span.children:
                add(child)

        for root in self.roots():
            add(root)
        foreign = self.foreign_spans()
        if foreign:
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": "sweep parent"},
                }
            )
        named_pids = set()
        for worker_pid, records in foreign:
            if worker_pid not in named_pids:
                named_pids.add(worker_pid)
                events.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": worker_pid,
                        "tid": 0,
                        "args": {"name": f"sweep worker {worker_pid}"},
                    }
                )
            for record in records:
                events.append(
                    {
                        "name": str(record["name"]),
                        "ph": "X",
                        "ts": (float(record["start_s"]) - self._epoch_abs) * 1e6,
                        "dur": float(record["wall_s"]) * 1e6,
                        "pid": worker_pid,
                        "tid": int(record["tid"]),
                        "args": dict(record.get("attrs", {})),
                    }
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def render_text(self, max_depth: Optional[int] = None) -> str:
        """ASCII tree of the finished spans with wall/CPU timings.

        ``max_depth`` truncates deep trees (1 = roots only); truncated
        levels report how many child spans were elided.
        """
        lines: List[str] = ["== trace =="]

        def add(span: Span, depth: int) -> None:
            indent = "  " * depth
            attrs = ""
            if span.attrs:
                attrs = " [" + " ".join(
                    f"{key}={value}" for key, value in span.attrs.items()
                ) + "]"
            lines.append(
                f"{indent}{span.name}  wall={span.wall_s:.4f}s "
                f"cpu={span.cpu_s:.4f}s{attrs}"
            )
            if max_depth is not None and depth + 1 >= max_depth:
                if span.children:
                    lines.append(f"{indent}  ... {len(span.children)} child span(s)")
                return
            for child in span.children:
                add(child, depth + 1)

        for root in self.roots():
            add(root, 0)
        if len(lines) == 1:
            lines.append("(no spans recorded)")
        return "\n".join(lines)

    def save(self, path: PathLike, fmt: Optional[str] = None) -> None:
        """Write the trace as JSON to ``path``.

        ``fmt`` is ``"tree"`` (nested span tree, the default) or
        ``"chrome"`` (``trace_event`` format).  When omitted, a filename
        containing ``chrome`` (e.g. ``run.chrome.json``) selects the
        Chrome format.
        """
        if fmt is None:
            fmt = "chrome" if "chrome" in os.path.basename(str(path)) else "tree"
        if fmt == "tree":
            document = self.to_tree()
        elif fmt == "chrome":
            document = self.to_chrome_trace()
        else:
            raise ValueError(f"unknown trace format {fmt!r}; use 'tree' or 'chrome'")
        parent = os.path.dirname(str(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")


#: The process-wide default tracer; disabled until opted into.
_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide default tracer the library instruments into."""
    return _TRACER


def span(name: str, **attrs: Any) -> Union[_SpanContext, _NullSpanContext]:
    """Open a span on the default tracer (no-op object when disabled)."""
    if not _TRACER.enabled:
        return _NULL_SPAN
    return _TRACER.span(name, **attrs)


def enable_tracing() -> None:
    """Start recording spans on the default tracer."""
    _TRACER.enabled = True


def disable_tracing() -> None:
    """Stop recording (already finished spans are retained)."""
    _TRACER.enabled = False


def tracing_enabled() -> bool:
    """Whether the default tracer is currently recording."""
    return _TRACER.enabled


def reset_tracing(drop_open: bool = False) -> None:
    """Drop the default tracer's finished spans (see :meth:`Tracer.reset`)."""
    _TRACER.reset(drop_open=drop_open)


def trace_roots() -> Tuple[Span, ...]:
    """Finished top-level spans of the default tracer."""
    return _TRACER.roots()


def export_spans() -> List[Dict[str, Any]]:
    """Portable records of the default tracer's finished spans
    (see :meth:`Tracer.export_spans`)."""
    return _TRACER.export_spans()


def ingest_spans(records: List[Dict[str, Any]], pid: int) -> None:
    """Adopt another process' exported spans into the default tracer
    (no-op when tracing is disabled; see :meth:`Tracer.ingest_spans`)."""
    _TRACER.ingest_spans(records, pid)


def trace_tree() -> Dict[str, Any]:
    """Nested span-tree document of the default tracer."""
    return _TRACER.to_tree()


def render_trace(max_depth: Optional[int] = None) -> str:
    """ASCII rendering of the default tracer's span trees."""
    return _TRACER.render_text(max_depth=max_depth)


def save_trace(path: PathLike, fmt: Optional[str] = None) -> None:
    """Write the default tracer's spans as JSON (see :meth:`Tracer.save`)."""
    _TRACER.save(path, fmt=fmt)
