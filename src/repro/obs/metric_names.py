"""Single source of truth for metric names.

Metrics are created lazily on first write (see
:class:`repro.obs.metrics.MetricsRegistry`), which makes a typo'd name a
silent fork rather than an error.  Every counter and gauge name the
pipeline emits is therefore declared here, checked in, and enforced from
both directions:

* statically — ``repro lint`` (rule RL004) checks every string-literal
  name passed to ``inc``/``set_gauge``/``observe``/``counter_value``
  against this module;
* at runtime — a validating :class:`~repro.obs.metrics.MetricsRegistry`
  raises :class:`UnknownMetricError` when a dynamic (non-literal) name
  slips past the linter.

Histograms are a special case: the only histogram writer is the tracer's
per-span timing (``span.<name>.seconds``), whose names are dynamic by
design, so histograms are validated by the :data:`HISTOGRAM_PATTERNS`
shape instead of an enumerated set.

Adding a metric is a two-line change: emit it at the call site and add
the name to the matching set below.  The lint self-check keeps the two
in sync.
"""

from __future__ import annotations

import re
from typing import FrozenSet, Tuple

#: Every counter name the pipeline may increment.
COUNTERS: FrozenSet[str] = frozenset(
    {
        # scheduling
        "schedules_run",
        "schedule_days",
        "schedule_moved_mwh",
        "schedule_deferrals",
        "forecast_schedules",
        # combined battery+scheduling simulation
        "combined_sims",
        "combined_sim_hours",
        "combined_deferred_mwh",
        # grid/supply generation
        "grid_datasets_generated",
        # battery simulation
        "battery_runs_seeded",
        "battery_rows_seeded",
        "battery_sims",
        "battery_sim_hours",
        "battery_capacity_probes",
        # sweep engine / resilience
        "sweeps_completed",
        "designs_evaluated",
        "designs_batched",
        "chunk_retries",
        "chunk_failures",
        "serial_fallbacks",
        "sites_quarantined",
        "chunks_deadline_dropped",
        "checkpoint_chunks_skipped",
        "checkpoint_designs_skipped",
        "checkpoint_chunks_written",
        # sweep engine / cross-site work stealing
        "capacity_steals",
        # caches
        "supply_cache_hits",
        "supply_cache_misses",
        "battery_seed_cache_hits",
        "battery_seed_cache_misses",
        "site_context_cache_hits",
        "site_context_cache_misses",
        "site_context_cache_evictions",
        # shared-memory trace plane
        "context_attach_count",
        "shm_bytes_shared",
    }
)

#: Every gauge name the pipeline may set.
GAUGES: FrozenSet[str] = frozenset(
    {
        "context_pickle_bytes",
        "sweep_grid_points",
        "batch_rows_peak",
        "fleet_deadline_remaining_s",
    }
)

#: Shapes of dynamically-named histograms (currently only span timings).
HISTOGRAM_PATTERNS: Tuple[re.Pattern, ...] = (
    re.compile(r"^span\.[A-Za-z0-9_.\-]+\.seconds$"),
)

#: Every sweep-event kind the pipeline may emit onto a
#: :class:`repro.obs.events.SweepEvents` bus.  Same single-source pattern
#: as :data:`COUNTERS`: the static RL007 lint rule checks literal kinds in
#: ``emit()`` calls against this set, and a validating bus raises
#: :class:`UnknownMetricError` on dynamic kinds at runtime.
EVENTS: FrozenSet[str] = frozenset(
    {
        "sweep_started",
        "chunk_completed",
        "chunk_retried",
        "frontier_updated",
        "sweep_finished",
        # fleet scheduler (repro.core.fleet / core.engine)
        "site_quarantined",
        "deadline_exceeded",
        "sweep_degraded",
        "capacity_stolen",
    }
)


class UnknownMetricError(KeyError):
    """A metric name was used that is not declared in this module."""

    def __init__(self, kind: str, name: str) -> None:
        super().__init__(name)
        self.kind = kind
        self.name = name

    def __str__(self) -> str:
        return (
            f"unknown {self.kind} metric {self.name!r}; declare it in "
            "repro/obs/metric_names.py (the single source of truth) "
            "or fix the typo"
        )


def is_known_metric(kind: str, name: str) -> bool:
    """Whether ``name`` is a declared metric of ``kind``.

    ``kind`` is one of ``"counter"``, ``"gauge"``, ``"histogram"``,
    ``"event"``.  Unrecognized kinds return ``False`` (there is nothing
    they could legitimately name).
    """
    if kind == "counter":
        return name in COUNTERS
    if kind == "gauge":
        return name in GAUGES
    if kind == "histogram":
        return any(pattern.match(name) for pattern in HISTOGRAM_PATTERNS)
    if kind == "event":
        return name in EVENTS
    return False


def check_metric(kind: str, name: str) -> None:
    """Raise :class:`UnknownMetricError` unless ``name`` is declared."""
    if not is_known_metric(kind, name):
        raise UnknownMetricError(kind, name)
