"""Process-wide metrics: counters, gauges, and histograms.

A :class:`MetricsRegistry` names and aggregates three metric kinds:

* **counters** — monotonically increasing totals (``designs_evaluated``,
  ``battery_sim_hours``);
* **gauges** — last-written values (``sweep_grid_points``);
* **histograms** — distributions over observed values with log-spaced
  buckets (span durations, per-sweep move totals).

The module-level default registry is what the instrumented library code
writes to through :func:`inc` / :func:`set_gauge` / :func:`observe`.  It is
**disabled by default**: every helper's first action is a single flag
check, so an un-instrumented run pays one attribute load and branch per
call site — nothing is allocated, named, or locked.  Enable collection
with :func:`enable_metrics`, read it back with :func:`metrics_snapshot`
(a plain JSON-serializable dict) or :func:`render_metrics` (aligned
text), and clear it with :func:`reset_metrics`.

All mutation goes through one lock per registry, so concurrent sweeps
(threaded callers) aggregate correctly; the instrumented call sites are
per-simulation, not per-simulated-hour, so the lock is cold.
"""

from __future__ import annotations

import bisect
import json
import math
import os
import threading
from typing import Any, Dict, List, Optional, Union

from . import metric_names

PathLike = Union[str, "os.PathLike[str]"]

#: Upper bucket bounds for histograms: half-decade log spacing covering
#: microseconds to megaseconds (durations) and unit-scale quantities.
#: Shared by every histogram, which is what makes cross-process merging
#: (:meth:`Histogram.merge_json`) and Prometheus exposition
#: (:mod:`repro.obs.export`) a straight bucket-by-bucket sum.
BUCKET_BOUNDS: List[float] = [
    10.0 ** (exponent / 2.0) for exponent in range(-12, 13)
]

_BUCKET_BOUNDS = BUCKET_BOUNDS

#: Snapshot bucket keys (the ``le`` bound rendered with ``%.6g``) mapped
#: back to their bucket index — the decoder for :meth:`Histogram.as_json`'s
#: sparse ``buckets`` dict.
_BOUND_KEY_TO_INDEX: Dict[str, int] = {
    f"{bound:.6g}": index for index, bound in enumerate(BUCKET_BOUNDS)
}
_BOUND_KEY_TO_INDEX["inf"] = len(BUCKET_BOUNDS)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def as_json(self) -> float:
        """Snapshot value (int when the total is integral)."""
        return int(self.value) if self.value.is_integer() else self.value


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def as_json(self) -> float:
        return self.value


class Histogram:
    """A distribution over observed values with fixed log-spaced buckets."""

    __slots__ = ("name", "count", "total", "min", "max", "bucket_counts")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        # One count per bound plus an overflow bucket.
        self.bucket_counts = [0] * (len(_BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.bucket_counts[bisect.bisect_left(_BUCKET_BOUNDS, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Standard bucketed-histogram estimation (what Prometheus'
        ``histogram_quantile`` computes): find the bucket holding the
        ``q * count``-th observation and interpolate linearly inside it,
        then clamp to the exactly-tracked observed ``[min, max]`` so
        estimates never exceed the data.  Returns ``nan`` for an empty
        histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
                upper = (
                    BUCKET_BOUNDS[index]
                    if index < len(BUCKET_BOUNDS)
                    else self.max
                )
                fraction = (target - cumulative) / bucket_count
                estimate = lower + (upper - lower) * max(fraction, 0.0)
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max  # pragma: no cover - target <= count always lands

    def merge_json(self, stats: Dict[str, Any]) -> None:
        """Fold an :meth:`as_json` snapshot from another registry into this
        histogram — how worker-process span/distribution data is made
        exact across a parallel sweep (bucket counts are additive because
        every histogram shares :data:`BUCKET_BOUNDS`).

        Raises
        ------
        ValueError
            If the snapshot references a bucket bound this build does not
            have (a snapshot from an incompatible version).
        """
        count = int(stats.get("count", 0))
        if count == 0:
            return
        self.count += count
        self.total += float(stats.get("sum", 0.0))
        low = stats.get("min")
        high = stats.get("max")
        if low is not None and low < self.min:
            self.min = low
        if high is not None and high > self.max:
            self.max = high
        for key, bucket_count in stats.get("buckets", {}).items():
            index = _BOUND_KEY_TO_INDEX.get(str(key))
            if index is None:
                raise ValueError(
                    f"histogram {self.name!r}: snapshot bucket bound {key!r} "
                    "does not match this build's BUCKET_BOUNDS"
                )
            self.bucket_counts[index] += int(bucket_count)

    def as_json(self) -> Dict[str, Any]:
        """Snapshot including only non-empty buckets (keyed by ``le`` bound)."""
        buckets: Dict[str, int] = {}
        for index, count in enumerate(self.bucket_counts):
            if count == 0:
                continue
            bound = (
                f"{_BUCKET_BOUNDS[index]:.6g}"
                if index < len(_BUCKET_BOUNDS)
                else "inf"
            )
            buckets[bound] = count
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean if self.count else None,
            "buckets": buckets,
        }


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Thread-safe; metric objects are created lazily on first write.  The
    module-level default registry backs the convenience functions below,
    but independent registries can be instantiated freely (tests do).

    With ``validate=True`` every lazily created metric's name is checked
    against :mod:`repro.obs.metric_names` and an unknown name raises
    :class:`~repro.obs.metric_names.UnknownMetricError` — the runtime
    backstop behind the static RL004 lint rule, catching dynamic names
    the linter cannot see.  The default registry validates; ad-hoc
    instances (tests, scratch measurements) default to ``False``.
    Validation happens only at creation time while enabled, so the
    disabled fast path still pays one flag check and nothing else.
    """

    def __init__(self, enabled: bool = True, validate: bool = False) -> None:
        self.enabled = enabled
        self.validate = validate
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (created at 0 on first use)."""
        if not self.enabled:
            return
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                if self.validate:
                    metric_names.check_metric("counter", name)
                counter = self._counters[name] = Counter(name)
            counter.value += amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        if not self.enabled:
            return
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                if self.validate:
                    metric_names.check_metric("gauge", name)
                gauge = self._gauges[name] = Gauge(name)
            gauge.value = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        if not self.enabled:
            return
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                if self.validate:
                    metric_names.check_metric("histogram", name)
                histogram = self._histograms[name] = Histogram(name)
            histogram.observe(value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter_value(self, name: str) -> float:
        """Current value of a counter (0 if it never fired)."""
        with self._lock:
            counter = self._counters.get(name)
            return counter.value if counter is not None else 0.0

    def gauge_value(self, name: str) -> float:
        """Current value of a gauge (0 if it was never set)."""
        with self._lock:
            gauge = self._gauges.get(name)
            return gauge.value if gauge is not None else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """A point-in-time copy as a plain JSON-serializable dict.

        Round-trips losslessly through ``json.dumps``/``json.loads``.
        """
        with self._lock:
            return {
                "counters": {
                    name: c.as_json() for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: g.as_json() for name, g in sorted(self._gauges.items())
                },
                "histograms": {
                    name: h.as_json() for name, h in sorted(self._histograms.items())
                },
            }

    def merge_counters(self, counters: Dict[str, float]) -> None:
        """Add another registry's counter totals into this one.

        ``counters`` is the ``"counters"`` section of a
        :meth:`snapshot` — this is how worker-process registries are
        folded back into the parent after a parallel sweep (gauges and
        histograms are point-in-time/distribution-shaped and are not
        merged).  No-op while this registry is disabled.
        """
        for name, value in counters.items():
            self.inc(name, value)

    def merge_histograms(self, histograms: Dict[str, Dict[str, Any]]) -> None:
        """Fold another registry's histogram snapshots into this one.

        ``histograms`` is the ``"histograms"`` section of a
        :meth:`snapshot`.  Counts, sums, min/max, and per-bucket counts
        are all additive/order-free (shared :data:`BUCKET_BOUNDS`), so
        merging worker snapshots chunk by chunk reproduces exactly the
        histogram a serial run would have built.  No-op while disabled.
        """
        if not self.enabled:
            return
        for name, stats in histograms.items():
            with self._lock:
                histogram = self._histograms.get(name)
                if histogram is None:
                    if self.validate:
                        metric_names.check_metric("histogram", name)
                    histogram = self._histograms[name] = Histogram(name)
                histogram.merge_json(stats)

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold a full :meth:`snapshot` into this registry.

        Counters and histograms merge additively; gauges are
        point-in-time values and are deliberately *not* merged (a worker's
        last-written gauge has no meaning in the parent).
        """
        self.merge_counters(snapshot.get("counters", {}))
        self.merge_histograms(snapshot.get("histograms", {}))

    def reset(self) -> None:
        """Drop every metric (names included)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def render_text(self) -> str:
        """Human-readable report of the current contents."""
        snap = self.snapshot()
        lines: List[str] = ["== metrics =="]
        if snap["counters"]:
            lines.append("counters:")
            width = max(len(name) for name in snap["counters"])
            for name, value in snap["counters"].items():
                lines.append(f"  {name:<{width}}  {value:,}")
        if snap["gauges"]:
            lines.append("gauges:")
            width = max(len(name) for name in snap["gauges"])
            for name, value in snap["gauges"].items():
                lines.append(f"  {name:<{width}}  {value:g}")
        if snap["histograms"]:
            lines.append("histograms:")
            width = max(len(name) for name in snap["histograms"])
            with self._lock:
                quantiles = {
                    name: (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99))
                    for name, h in self._histograms.items()
                    if h.count
                }
            for name, stats in snap["histograms"].items():
                p50, p95, p99 = quantiles.get(name, (math.nan,) * 3)
                lines.append(
                    f"  {name:<{width}}  n={stats['count']} "
                    f"mean={stats['mean']:.6g} p50={p50:.6g} "
                    f"p95={p95:.6g} p99={p99:.6g} "
                    f"min={stats['min']:.6g} max={stats['max']:.6g}"
                )
        if len(lines) == 1:
            lines.append("(empty)")
        return "\n".join(lines)

    def save(self, path: PathLike) -> None:
        """Write the snapshot as JSON to ``path`` (creating parent dirs)."""
        parent = os.path.dirname(str(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")


#: The process-wide default registry; disabled until opted into.  It
#: validates names against :mod:`repro.obs.metric_names` — the library's
#: own instrumentation must only emit declared metrics.
_REGISTRY = MetricsRegistry(enabled=False, validate=True)


def get_registry() -> MetricsRegistry:
    """The process-wide default registry the library instruments into."""
    return _REGISTRY


def enable_metrics() -> None:
    """Start collecting metrics in the default registry."""
    _REGISTRY.enabled = True


def disable_metrics() -> None:
    """Stop collecting (already collected values are retained)."""
    _REGISTRY.enabled = False


def metrics_enabled() -> bool:
    """Whether the default registry is currently collecting."""
    return _REGISTRY.enabled


def inc(name: str, amount: float = 1.0) -> None:
    """Add to a counter in the default registry (no-op when disabled)."""
    if not _REGISTRY.enabled:
        return
    _REGISTRY.inc(name, amount)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge in the default registry (no-op when disabled)."""
    if not _REGISTRY.enabled:
        return
    _REGISTRY.set_gauge(name, value)


def gauge_value(name: str) -> float:
    """Current value of a gauge in the default registry (0 if never set)."""
    return _REGISTRY.gauge_value(name)


def observe(name: str, value: float) -> None:
    """Observe into a histogram in the default registry (no-op when disabled)."""
    if not _REGISTRY.enabled:
        return
    _REGISTRY.observe(name, value)


def merge_counters(snapshot: Dict[str, Any]) -> None:
    """Fold a :func:`metrics_snapshot`-shaped dict's counters into the
    default registry (no-op when disabled; see
    :meth:`MetricsRegistry.merge_counters`)."""
    if not _REGISTRY.enabled:
        return
    _REGISTRY.merge_counters(snapshot.get("counters", {}))


def merge_snapshot(snapshot: Dict[str, Any]) -> None:
    """Fold a :func:`metrics_snapshot`-shaped dict's counters *and*
    histograms into the default registry (no-op when disabled; see
    :meth:`MetricsRegistry.merge_snapshot`)."""
    if not _REGISTRY.enabled:
        return
    _REGISTRY.merge_snapshot(snapshot)


def metrics_snapshot() -> Dict[str, Any]:
    """Snapshot of the default registry (see :meth:`MetricsRegistry.snapshot`)."""
    return _REGISTRY.snapshot()


def reset_metrics() -> None:
    """Clear the default registry."""
    _REGISTRY.reset()


def render_metrics() -> str:
    """Text report of the default registry."""
    return _REGISTRY.render_text()


def save_metrics(path: PathLike) -> None:
    """Write the default registry's snapshot as JSON to ``path``."""
    _REGISTRY.save(path)
