"""Stdlib ``logging`` wiring for the library (the ``repro.*`` namespace).

Library code never configures handlers — it logs through
:func:`get_logger` under the ``repro`` namespace and a ``NullHandler``
keeps the "No handlers could be found" warning away when the embedding
application has not configured logging.  The CLI (and any application
that wants console output) calls :func:`configure_logging` once.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO, Union

#: Root of the library's logger namespace; every module logs below it.
LOGGER_NAME = "repro"

#: Marker attribute identifying the handler :func:`configure_logging`
#: installs, so repeat calls reconfigure instead of stacking handlers.
_HANDLER_MARKER = "_repro_obs_handler"

logging.getLogger(LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: str = "") -> logging.Logger:
    """Logger for a library component, namespaced under ``repro``.

    >>> get_logger("core.optimizer").name
    'repro.core.optimizer'
    >>> get_logger().name
    'repro'
    """
    if not name:
        return logging.getLogger(LOGGER_NAME)
    if name.startswith(LOGGER_NAME + ".") or name == LOGGER_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


def configure_logging(
    level: Union[int, str] = "info",
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """Attach a console handler to the ``repro`` logger (application side).

    Idempotent: calling again replaces the previously installed handler
    (and its level) rather than stacking duplicates.  Only the ``repro``
    namespace is touched — the root logger and other libraries are left
    alone.

    Parameters
    ----------
    level:
        A :mod:`logging` level number or name (``"debug"``, ``"info"``, ...).
    stream:
        Destination stream; defaults to ``sys.stderr``.
    """
    if isinstance(level, str):
        numeric = logging.getLevelName(level.upper())
        if not isinstance(numeric, int):
            raise ValueError(f"unknown log level {level!r}")
    else:
        numeric = level

    logger = logging.getLogger(LOGGER_NAME)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_MARKER, False):
            logger.removeHandler(handler)

    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
    )
    setattr(handler, _HANDLER_MARKER, True)
    logger.addHandler(handler)
    logger.setLevel(numeric)
    return logger
